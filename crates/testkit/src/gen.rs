//! Composable value generators with failure-case shrinking.
//!
//! A [`Gen`] produces random values from an [`Rng`] and, given a failing
//! value, proposes *simpler* candidate values ([`Gen::shrink`]). The
//! property runner ([`crate::prop`]) walks the shrink candidates greedily
//! until none of them still fail, which converges on a (locally) minimal
//! counterexample.
//!
//! Shrinking contract: every candidate returned by `shrink(v)` must be
//! strictly simpler than `v` under a well-founded order (smaller
//! magnitude, shorter vector, …), so the greedy walk always terminates.

use crate::rng::Rng;
use std::fmt::Debug;
use std::rc::Rc;

/// A generator of random test values.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes strictly-simpler candidates for a failing value. An empty
    /// vector means the value is already minimal (or unshrinkable).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// Boxing support so heterogeneous generators can be stored.
impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<G: Gen + ?Sized> Gen for Rc<G> {
    type Value = G::Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

// ---------------------------------------------------------------------
// numeric ranges
// ---------------------------------------------------------------------

/// Uniform `f64` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[lo, hi)`.
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    assert!(lo < hi, "empty f64 range [{lo}, {hi})");
    F64Range { lo, hi }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.f64_in(self.lo, self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.lo {
            // Jump straight to the minimum, then bisect toward it.
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2.0;
            if mid > self.lo && mid < v {
                out.push(mid);
            }
            // Try "nice" round values for readability of counterexamples.
            let rounded = v.floor();
            if rounded > self.lo && rounded < v {
                out.push(rounded);
            }
        }
        out
    }
}

/// Uniform `u64` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

/// Uniform `u64` in `[lo, hi)`.
pub fn u64_range(lo: u64, hi: u64) -> U64Range {
    assert!(lo < hi, "empty u64 range [{lo}, {hi})");
    U64Range { lo, hi }
}

impl Gen for U64Range {
    type Value = u64;

    fn generate(&self, rng: &mut Rng) -> u64 {
        rng.u64_in(self.lo, self.hi)
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        shrink_integer(*value, self.lo)
    }
}

/// Uniform `usize` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

/// Uniform `usize` in `[lo, hi)`.
pub fn usize_range(lo: usize, hi: usize) -> UsizeRange {
    assert!(lo < hi, "empty usize range [{lo}, {hi})");
    UsizeRange { lo, hi }
}

impl Gen for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut Rng) -> usize {
        rng.usize_in(self.lo, self.hi)
    }

    #[allow(clippy::cast_possible_truncation)] // shrunk values <= original
    fn shrink(&self, value: &usize) -> Vec<usize> {
        shrink_integer(*value as u64, self.lo as u64)
            .into_iter()
            .map(|v| v as usize)
            .collect()
    }
}

/// Integer shrink schedule: minimum first, then bisection, then
/// decrement — all strictly smaller than `v`.
fn shrink_integer(v: u64, lo: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v > lo {
        out.push(lo);
        let mid = lo + (v - lo) / 2;
        if mid > lo && mid < v {
            out.push(mid);
        }
        if v - 1 > lo && v - 1 != mid {
            out.push(v - 1);
        }
    }
    out
}

// ---------------------------------------------------------------------
// constants and booleans
// ---------------------------------------------------------------------

/// Always yields a fixed value (never shrinks).
#[derive(Debug, Clone, Copy)]
pub struct Constant<T>(pub T);

/// A generator that always yields `value`.
pub fn constant<T: Clone + Debug>(value: T) -> Constant<T> {
    Constant(value)
}

impl<T: Clone + Debug> Gen for Constant<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Uniform boolean; shrinks `true` to `false`.
#[derive(Debug, Clone, Copy)]
pub struct BoolGen;

/// Uniform boolean generator.
pub fn any_bool() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.bool_with(0.5)
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ---------------------------------------------------------------------
// vectors
// ---------------------------------------------------------------------

/// Vector of `min..=max` elements drawn from an inner generator.
///
/// Shrinks by (a) chopping the tail down toward `min` length, (b)
/// removing single elements, and (c) shrinking individual elements.
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    inner: G,
    min: usize,
    max: usize,
}

/// Vector generator with an inclusive length range `[min, max]`.
pub fn vec_of<G: Gen>(inner: G, min: usize, max: usize) -> VecOf<G> {
    assert!(min <= max, "empty length range [{min}, {max}]");
    VecOf { inner, min, max }
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let len = if self.min == self.max {
            self.min
        } else {
            rng.usize_in(self.min, self.max + 1)
        };
        (0..len).map(|_| self.inner.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // (a) aggressive truncation: min length, then half length.
        if len > self.min {
            out.push(value[..self.min].to_vec());
            let half = self.min + (len - self.min) / 2;
            if half > self.min && half < len {
                out.push(value[..half].to_vec());
            }
            // (b) drop one element at a time (bounded to keep the
            // candidate list small for long vectors).
            for i in 0..len.min(8) {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // (c) shrink individual elements, keeping length fixed.
        for i in 0..len.min(8) {
            for candidate in self.inner.shrink(&value[i]) {
                let mut v = value.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// tuples
// ---------------------------------------------------------------------

macro_rules! impl_tuple_gen {
    ($name:ident, $fn_name:ident, $($G:ident => $idx:tt),+) => {
        /// Tuple generator; shrinks one component at a time.
        #[derive(Debug, Clone)]
        pub struct $name<$($G),+>($(pub $G),+);

        /// Builds a tuple generator from component generators.
        pub fn $fn_name<$($G: Gen),+>($($G: $G),+) -> $name<$($G),+> {
            $name($($G),+)
        }

        impl<$($G: Gen),+> Gen for $name<$($G),+> {
            type Value = ($($G::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

#[allow(non_snake_case)]
mod tuples {
    use super::*;
    impl_tuple_gen!(Tuple2, tuple2, A => 0, B => 1);
    impl_tuple_gen!(Tuple3, tuple3, A => 0, B => 1, C => 2);
    impl_tuple_gen!(Tuple4, tuple4, A => 0, B => 1, C => 2, D => 3);
}
pub use tuples::{tuple2, tuple3, tuple4, Tuple2, Tuple3, Tuple4};

// ---------------------------------------------------------------------
// map / choice
// ---------------------------------------------------------------------

/// Maps a function over a generator's output.
///
/// Shrinking maps the *inner* candidates through the function, so
/// counterexamples stay as simple as the underlying representation
/// allows. (The mapped value itself cannot be shrunk directly because
/// the mapping is not invertible.)
pub struct Map<G, F> {
    inner: G,
    f: F,
}

/// Applies `f` to every generated value.
pub fn map<G: Gen, T, F>(inner: G, f: F) -> Map<G, F>
where
    T: Clone + Debug,
    F: Fn(G::Value) -> T,
{
    Map { inner, f }
}

impl<G: Gen, T, F> Gen for Map<G, F>
where
    T: Clone + Debug,
    F: Fn(G::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.inner.generate(rng))
    }
    // No shrink: the inner pre-image of `value` is unknown. The runner
    // keeps the original inner draw for shrinking when possible by
    // preferring structured generators at the top level.
}

/// Uniformly picks one of a fixed list of values; shrinks toward the
/// front of the list.
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    choices: Vec<T>,
}

/// Uniformly samples from `choices` (must be non-empty).
pub fn one_of<T: Clone + Debug>(choices: &[T]) -> OneOf<T> {
    assert!(!choices.is_empty(), "one_of needs at least one choice");
    OneOf {
        choices: choices.to_vec(),
    }
}

impl<T: Clone + Debug + PartialEq> Gen for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.usize_in(0, self.choices.len());
        self.choices[i].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        // Earlier choices are "simpler".
        match self.choices.iter().position(|c| c == value) {
            Some(0) | None => Vec::new(),
            Some(i) => vec![self.choices[0].clone(), self.choices[i - 1].clone()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_range_generates_in_bounds() {
        let g = f64_range(2.0, 3.0);
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let v = g.generate(&mut rng);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn integer_shrink_is_strictly_decreasing() {
        for v in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for c in shrink_integer(v, 0) {
                assert!(c < v, "candidate {c} not smaller than {v}");
            }
        }
        assert!(shrink_integer(5, 5).is_empty());
    }

    #[test]
    fn vec_shrink_candidates_are_simpler() {
        let g = vec_of(usize_range(0, 100), 1, 6);
        let v = vec![50usize, 60, 70, 80];
        for cand in g.shrink(&v) {
            let shorter = cand.len() < v.len();
            let same_len_smaller = cand.len() == v.len()
                && cand.iter().zip(&v).any(|(a, b)| a < b)
                && cand.iter().zip(&v).all(|(a, b)| a <= b);
            assert!(
                shorter || same_len_smaller,
                "candidate {cand:?} is not simpler than {v:?}"
            );
        }
    }

    #[test]
    fn tuple_shrink_changes_one_component() {
        let g = tuple2(usize_range(0, 10), usize_range(0, 10));
        let v = (5usize, 7usize);
        for (a, b) in g.shrink(&v) {
            assert!((a == v.0) != (b == v.1), "exactly one side must change");
        }
    }

    #[test]
    fn one_of_shrinks_toward_front() {
        let g = one_of(&[1u32, 2, 3]);
        assert!(g.shrink(&1).is_empty());
        assert!(g.shrink(&3).contains(&1));
    }
}
