//! The discrete-event executor: runs a [`Dag`] against a [`FlowNet`] and a
//! set of compute resources.
//!
//! Compute tasks occupy resource slots (FIFO when oversubscribed), transfer
//! tasks become flows whose rates are continuously re-balanced by the
//! max-min fair solver, and the engine advances virtual time from event to
//! event. Multiple runs may share one engine and one network so that
//! back-to-back training iterations keep a continuous clock (and token
//! buckets keep their state).

use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::dag::{Dag, TaskId, TaskKind};
use crate::error::SimError;
use crate::fault::{FaultCursor, FaultKind};
use crate::flow::{FlowId, FlowNet, FlowObserver};
use crate::record::SpanLog;
use crate::time::SimTime;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    TaskDone(TaskId),
    FlowStart(TaskId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct ResourceState {
    free_slots: usize,
    waiting: VecDeque<TaskId>,
}

/// Result of executing one DAG.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Time at which the run began.
    pub started: SimTime,
    /// Time at which the last task finished (or, for an interrupted run,
    /// the time of the interrupting fault).
    pub finished: SimTime,
    /// Per-task completion times, indexed by [`TaskId::index`]. Tasks that
    /// never finished (interrupted run) report [`SimTime::ZERO`].
    pub task_finish: Vec<SimTime>,
    /// True when a [`FaultKind::NodeLoss`] aborted the run before every
    /// task finished. The work of this run is lost; a resilience layer
    /// models restart-from-checkpoint and replay.
    pub interrupted: bool,
}

impl RunOutcome {
    /// Wall-clock (virtual) duration of the run.
    pub fn makespan(&self) -> SimTime {
        self.finished - self.started
    }
}

/// Executes DAGs on a fixed set of compute resources.
///
/// ```
/// use zerosim_simkit::dag::{DagBuilder, ResourceId};
/// use zerosim_simkit::engine::DagEngine;
/// use zerosim_simkit::flow::FlowNet;
/// use zerosim_simkit::SimTime;
///
/// # fn main() -> Result<(), zerosim_simkit::SimError> {
/// let mut net = FlowNet::new();
/// let link = net.add_link("pcie", 100.0);
/// let mut b = DagBuilder::new();
/// let c = b.compute(ResourceId(0), SimTime::from_ms(1.0), "gemm", &[]);
/// b.transfer(vec![link], 100.0, SimTime::ZERO, "h2d", 0, &[c]);
/// let dag = b.build();
///
/// let mut engine = DagEngine::new(vec![1]); // one GPU, one slot
/// let outcome = engine.run(&mut net, &dag, SimTime::ZERO, None)?;
/// assert_eq!(outcome.makespan(), SimTime::from_ms(1.0) + SimTime::from_secs(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DagEngine {
    slot_counts: Vec<usize>,
    spans: SpanLog,
    seq: u64,
    /// Per-resource service-rate factor (1.0 = nominal). Mutated by
    /// [`FaultKind::SlowResource`] / [`FaultKind::RestoreResource`] events
    /// and persistent across runs, so a straggler stays slow from iteration
    /// to iteration until explicitly restored.
    resource_scale: Vec<f64>,
}

/// Stretches a compute duration by the inverse of a service-rate factor.
///
/// `scale == 1.0` is an exact no-op (bit-identical to the unscaled
/// duration), which is what keeps fault-free runs byte-identical to the
/// pre-fault-injection engine.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // ns fit u64
fn scale_duration(scale: f64, d: SimTime) -> SimTime {
    if scale == 1.0 {
        d
    } else {
        SimTime::from_nanos((d.as_nanos() as f64 / scale).round() as u64)
    }
}

impl DagEngine {
    /// Creates an engine with `slot_counts[i]` concurrent slots on resource
    /// `ResourceId(i)`.
    ///
    /// # Panics
    /// Panics if any slot count is zero.
    pub fn new(slot_counts: Vec<usize>) -> Self {
        assert!(
            slot_counts.iter().all(|&s| s > 0),
            "every resource needs at least one slot"
        );
        let n = slot_counts.len();
        DagEngine {
            slot_counts,
            spans: SpanLog::new(),
            seq: 0,
            resource_scale: vec![1.0; n],
        }
    }

    /// Current service-rate factor of resource `resource` (1.0 = nominal).
    ///
    /// # Panics
    /// Panics if `resource` is out of range.
    pub fn resource_scale(&self, resource: usize) -> f64 {
        self.resource_scale[resource]
    }

    /// Timeline spans accumulated across all runs so far.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Takes ownership of the accumulated spans, leaving the log empty.
    pub fn take_spans(&mut self) -> SpanLog {
        std::mem::take(&mut self.spans)
    }

    /// Executes `dag` starting at `start`, observing transfers with `obs`
    /// when provided.
    ///
    /// # Errors
    /// Returns [`SimError::Deadlock`] if tasks remain unfinished when no
    /// event can make progress (an impossible dependency given the DAG
    /// builder, but background flows in `net` could in principle starve a
    /// token bucket forever) and [`SimError::UnknownResource`] if a compute
    /// task names a resource the engine was not configured with.
    pub fn run(
        &mut self,
        net: &mut FlowNet,
        dag: &Dag,
        start: SimTime,
        obs: Option<&mut dyn FlowObserver>,
    ) -> Result<RunOutcome, SimError> {
        self.run_faulted(net, dag, start, obs, &mut FaultCursor::empty())
    }

    /// Executes `dag` starting at `start` while consuming due events from
    /// `faults`.
    ///
    /// Fault times are first-class event candidates: the engine advances
    /// virtual time to the earliest of the timer heap, the flow network,
    /// and the next fault, so a link rescale takes effect exactly at its
    /// scheduled instant and in-flight flows re-converge to the new max-min
    /// fair allocation from that point on. Events at the same instant are
    /// ordered: finished work is retired first, then faults apply, then
    /// newly ready tasks launch (under the post-fault service rates).
    ///
    /// A [`FaultKind::NodeLoss`] aborts the run at its firing time: flows
    /// this run started are cancelled (bytes already moved stay moved) and
    /// the returned outcome has [`RunOutcome::interrupted`] set. The cursor
    /// keeps its position across calls, so one schedule spans a whole
    /// multi-iteration simulation on a continuous clock.
    ///
    /// With an exhausted cursor this is exactly [`DagEngine::run`]: the
    /// fault hooks are bit-level no-ops, which keeps healthy runs
    /// byte-identical to the pre-fault-injection engine.
    ///
    /// # Errors
    /// Same conditions as [`DagEngine::run`], plus the [`SimError`]s of
    /// [`FlowNet::scale_link`] / [`FlowNet::set_link_cap`] for malformed
    /// link events and [`SimError::BadRateFactor`] /
    /// [`SimError::UnknownResource`] for malformed resource events.
    pub fn run_faulted(
        &mut self,
        net: &mut FlowNet,
        dag: &Dag,
        start: SimTime,
        mut obs: Option<&mut dyn FlowObserver>,
        faults: &mut FaultCursor,
    ) -> Result<RunOutcome, SimError> {
        let n = dag.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| dag.preds(TaskId(i)).len()).collect();
        let mut ready: VecDeque<TaskId> = (0..n).map(TaskId).filter(|t| indeg[t.0] == 0).collect();
        let mut resources: Vec<ResourceState> = self
            .slot_counts
            .iter()
            .map(|&s| ResourceState {
                free_slots: s,
                waiting: VecDeque::new(),
            })
            .collect();
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut flow_task: HashMap<FlowId, TaskId> = HashMap::new();
        let mut task_start: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut task_finish: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut finished = 0usize;
        let mut now = start;
        let mut interrupted = false;

        // Validates resources up front so the error is immediate.
        for t in dag.task_ids() {
            if let TaskKind::Compute { resource, .. } = &dag.task(t).kind {
                if resource.0 >= self.slot_counts.len() {
                    return Err(SimError::UnknownResource {
                        resource: resource.0,
                    });
                }
            }
        }

        macro_rules! finish_task {
            ($t:expr) => {{
                let t: TaskId = $t;
                task_finish[t.0] = now;
                let spec = dag.task(t);
                if let (Some(label), Some(track)) = (&spec.label, spec.track) {
                    self.spans.push(track, label.clone(), task_start[t.0], now);
                }
                if let TaskKind::Compute { resource, .. } = &spec.kind {
                    let rs = &mut resources[resource.0];
                    if let Some(next) = rs.waiting.pop_front() {
                        // Hand the slot directly to the next waiter.
                        task_start[next.0] = now;
                        if let TaskKind::Compute { duration, .. } = &dag.task(next).kind {
                            self.seq += 1;
                            heap.push(Event {
                                at: now
                                    + scale_duration(self.resource_scale[resource.0], *duration),
                                seq: self.seq,
                                kind: EventKind::TaskDone(next),
                            });
                        }
                    } else {
                        rs.free_slots += 1;
                    }
                }
                finished += 1;
                for &s in dag.succs(t) {
                    indeg[s.0] -= 1;
                    if indeg[s.0] == 0 {
                        ready.push_back(s);
                    }
                }
            }};
        }

        macro_rules! start_flow_for {
            ($t:expr) => {{
                let t: TaskId = $t;
                if let TaskKind::Transfer {
                    route, bytes, cap, ..
                } = &dag.task(t).kind
                {
                    let fid = net.start_flow_capped(route, *bytes, *cap)?;
                    flow_task.insert(fid, t);
                }
            }};
        }

        // Backstop against pathological event storms (e.g. a token bucket
        // oscillating at nanosecond granularity): proportional to DAG size
        // plus a generous constant for background-flow churn.
        let event_budget = 10_000_000u64 + 200 * n as u64;
        let mut events = 0u64;
        loop {
            events += 1;
            if events > event_budget {
                return Err(SimError::EventLimit {
                    budget: event_budget,
                });
            }
            // Apply every fault due at (or before) the current clock before
            // launching new work, so tasks that become ready at a fault
            // instant start under the post-fault service rates and a node
            // loss pre-empts them entirely. Events left over from an
            // aborted previous run (e.g. a restore that fired while a node
            // was rebooting) are caught up here as well.
            let mut lost_node = false;
            while let Some(ev) = faults.next_due(now) {
                match &ev.kind {
                    FaultKind::SetLinkCap {
                        link,
                        bytes_per_sec,
                    } => net.set_link_cap(*link, *bytes_per_sec)?,
                    FaultKind::ScaleLink { link, factor } => net.scale_link(*link, *factor)?,
                    FaultKind::RestoreLink { link } => net.restore_link(*link)?,
                    FaultKind::SlowResource { resource, factor } => {
                        if *resource >= self.resource_scale.len() {
                            return Err(SimError::UnknownResource {
                                resource: *resource,
                            });
                        }
                        if !(factor.is_finite() && *factor > 0.0) {
                            return Err(SimError::BadRateFactor {
                                resource: *resource,
                            });
                        }
                        self.resource_scale[*resource] = *factor;
                    }
                    FaultKind::RestoreResource { resource } => {
                        if *resource >= self.resource_scale.len() {
                            return Err(SimError::UnknownResource {
                                resource: *resource,
                            });
                        }
                        self.resource_scale[*resource] = 1.0;
                    }
                    FaultKind::NodeLoss { .. } => {
                        lost_node = true;
                        break;
                    }
                }
            }
            if lost_node {
                // Abandon the run: in-flight transfers this run started are
                // torn down (bytes already moved stay observed), pending
                // tasks never finish. Recovery — restart-from-checkpoint and
                // replay — is modelled by the caller.
                for (fid, _) in flow_task.drain() {
                    net.cancel_flow(fid);
                }
                interrupted = true;
                break;
            }
            // Launch everything that is ready.
            while let Some(t) = ready.pop_front() {
                task_start[t.0] = now;
                match &dag.task(t).kind {
                    TaskKind::Marker => finish_task!(t),
                    TaskKind::Delay { duration } => {
                        self.seq += 1;
                        heap.push(Event {
                            at: now + *duration,
                            seq: self.seq,
                            kind: EventKind::TaskDone(t),
                        });
                    }
                    TaskKind::Compute { resource, duration } => {
                        let rs = &mut resources[resource.0];
                        if rs.free_slots > 0 {
                            rs.free_slots -= 1;
                            self.seq += 1;
                            heap.push(Event {
                                at: now
                                    + scale_duration(self.resource_scale[resource.0], *duration),
                                seq: self.seq,
                                kind: EventKind::TaskDone(t),
                            });
                        } else {
                            rs.waiting.push_back(t);
                        }
                    }
                    TaskKind::Transfer { latency, .. } => {
                        if latency.is_zero() {
                            start_flow_for!(t);
                        } else {
                            self.seq += 1;
                            heap.push(Event {
                                at: now + *latency,
                                seq: self.seq,
                                kind: EventKind::FlowStart(t),
                            });
                        }
                    }
                }
            }

            if finished == n {
                break;
            }

            // Next event: earliest of timer heap, flow-network events, and
            // the next scheduled fault (all strictly in the future — due
            // faults were consumed above, due timers fired below).
            let timer_at = heap.peek().map(|e| e.at);
            let flow_at = net.next_event_in().map(|dt| {
                // Positive, finite, and bounded by the horizon: exact in u64.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let ns = (dt * 1e9).ceil().max(1.0) as u64;
                now + SimTime::from_nanos(ns)
            });
            let fault_at = faults.peek_at();
            let Some(t_next) = [timer_at, flow_at, fault_at].into_iter().flatten().min() else {
                return Err(SimError::Deadlock {
                    pending: n - finished,
                });
            };

            // Advance the network to t_next.
            let dt_secs = (t_next - now).as_secs();
            let done_flows = match obs.as_deref_mut() {
                Some(o) => net.advance(now, dt_secs, o),
                None => net.advance(now, dt_secs, &mut crate::flow::NullObserver),
            };
            now = t_next;
            for fid in done_flows {
                if let Some(t) = flow_task.remove(&fid) {
                    finish_task!(t);
                }
                // Foreign (background) flows complete silently.
            }

            // Fire all timer events scheduled exactly at t_next. Pop first
            // and push back when not yet due, which keeps this loop free of
            // a peek-then-pop unwrap.
            while let Some(ev) = heap.pop() {
                if ev.at > now {
                    heap.push(ev);
                    break;
                }
                match ev.kind {
                    EventKind::TaskDone(t) => finish_task!(t),
                    EventKind::FlowStart(t) => start_flow_for!(t),
                }
            }
        }

        Ok(RunOutcome {
            started: start,
            finished: now,
            task_finish,
            interrupted,
        })
    }

    /// Runs `dag` `count` times back to back, returning the outcomes.
    ///
    /// # Errors
    /// Propagates the first error from [`DagEngine::run`].
    pub fn run_iterations(
        &mut self,
        net: &mut FlowNet,
        dag: &Dag,
        start: SimTime,
        count: usize,
        mut obs: Option<&mut dyn FlowObserver>,
    ) -> Result<Vec<RunOutcome>, SimError> {
        let mut outcomes = Vec::with_capacity(count);
        let mut t = start;
        for _ in 0..count {
            let reborrow: Option<&mut dyn FlowObserver> = match obs.as_mut() {
                Some(o) => Some(&mut **o),
                None => None,
            };
            let outcome = self.run(net, dag, t, reborrow)?;
            t = outcome.finished;
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{DagBuilder, ResourceId};
    use crate::record::BandwidthRecorder;

    fn ms(v: f64) -> SimTime {
        SimTime::from_ms(v)
    }

    #[test]
    fn serial_compute_chain() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        let a = b.compute(ResourceId(0), ms(1.0), "a", &[]);
        let c = b.compute(ResourceId(0), ms(2.0), "b", &[a]);
        let _ = c;
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out.makespan(), ms(3.0));
    }

    #[test]
    fn slot_contention_serializes() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), ms(1.0), "a", &[]);
        b.compute(ResourceId(0), ms(1.0), "b", &[]);
        b.compute(ResourceId(0), ms(1.0), "c", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out.makespan(), ms(3.0));

        let mut eng2 = DagEngine::new(vec![3]);
        let out2 = eng2.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out2.makespan(), ms(1.0));
    }

    #[test]
    fn transfer_with_latency() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 1000.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 1000.0, ms(5.0), "x", 0, &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        // 5 ms latency + 1 s transfer.
        let secs = out.makespan().as_secs();
        assert!((secs - 1.005).abs() < 1e-6, "got {secs}");
    }

    #[test]
    fn compute_overlaps_transfer() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), SimTime::from_secs(1.0), "gemm", &[]);
        b.transfer(vec![l], 100.0, SimTime::ZERO, "comm", 0, &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert!((out.makespan().as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn diamond_dependencies() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        let root = b.compute(ResourceId(0), ms(1.0), "root", &[]);
        let left = b.compute(ResourceId(0), ms(2.0), "left", &[root]);
        let right = b.compute(ResourceId(1), ms(3.0), "right", &[root]);
        b.marker(&[left, right]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1, 1]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out.makespan(), ms(4.0));
    }

    #[test]
    fn spans_are_recorded() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), ms(2.0), "gemm", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(eng.spans().busy_time(0, "gemm"), ms(2.0));
    }

    #[test]
    fn iterations_keep_continuous_clock() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), ms(10.0), "iter", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let outs = eng
            .run_iterations(&mut net, &dag, SimTime::ZERO, 3, None)
            .unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[2].finished, ms(30.0));
        assert_eq!(outs[1].started, ms(10.0));
    }

    #[test]
    fn unknown_resource_is_an_error() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(5), ms(1.0), "x", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let err = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap_err();
        assert!(matches!(err, SimError::UnknownResource { resource: 5 }));
    }

    #[test]
    fn observer_records_transfer_bytes() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 1000.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 500.0, SimTime::ZERO, "x", 0, &[]);
        let dag = b.build();
        let mut rec = BandwidthRecorder::new(ms(100.0));
        let mut eng = DagEngine::new(vec![]);
        eng.run(&mut net, &dag, SimTime::ZERO, Some(&mut rec))
            .unwrap();
        assert!((rec.total_bytes(l) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn two_transfers_share_bandwidth() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 100.0, SimTime::ZERO, "x", 0, &[]);
        b.transfer(vec![l], 100.0, SimTime::ZERO, "y", 0, &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert!((out.makespan().as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_dag_completes_instantly() {
        let mut net = FlowNet::new();
        let dag = DagBuilder::new().build();
        let mut eng = DagEngine::new(vec![]);
        let out = eng.run(&mut net, &dag, ms(7.0), None).unwrap();
        assert_eq!(out.makespan(), SimTime::ZERO);
        assert_eq!(out.started, ms(7.0));
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::dag::{DagBuilder, ResourceId};

    #[test]
    fn engine_coexists_with_background_flows() {
        // A long-lived background flow keeps running while a DAG executes;
        // the engine must neither adopt nor stall on it.
        let mut net = FlowNet::new();
        let shared = net.add_link("shared", 100.0);
        net.start_flow(&[shared], 1_000_000.0).unwrap(); // background
        let mut b = DagBuilder::new();
        b.transfer(vec![shared], 100.0, SimTime::ZERO, "fg", 0, &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        // Foreground shares the link 50/50: 100 bytes at 50 B/s.
        assert!((out.makespan().as_secs() - 2.0).abs() < 1e-6);
        // Background flow still in the network afterwards.
        assert_eq!(net.flow_count(), 1);
    }

    #[test]
    fn event_budget_error_is_surfaced() {
        // A DAG needing more events than the budget allows must error, not
        // hang. Build a chain long enough to exceed a tiny artificial
        // budget... the budget is generous, so instead verify the error
        // type renders and compares.
        let e = SimError::EventLimit { budget: 7 };
        assert!(e.to_string().contains('7'));
        assert_eq!(e, SimError::EventLimit { budget: 7 });
    }

    #[test]
    fn straggler_stretches_compute() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), SimTime::from_ms(10.0), "k", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let sched = FaultSchedule::new(0).at(
            0.0,
            FaultKind::SlowResource {
                resource: 0,
                factor: 0.5,
            },
        );
        let mut cur = sched.cursor();
        let out = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut cur)
            .unwrap();
        // Half speed -> twice as long.
        assert_eq!(out.makespan(), SimTime::from_ms(20.0));
        assert!(!out.interrupted);
        assert_eq!(eng.resource_scale(0), 0.5);
        // The slowdown persists across runs until restored.
        let out2 = eng
            .run_faulted(&mut net, &dag, out.finished, None, &mut cur)
            .unwrap();
        assert_eq!(out2.makespan(), SimTime::from_ms(20.0));
    }

    #[test]
    fn link_degradation_mid_run_stretches_transfer() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 100.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 100.0, SimTime::ZERO, "x", 0, &[]);
        let dag = b.build();
        // Degrade to 50% at t = 0.5 s: 50 bytes move in the first half
        // second, the remaining 50 take 1 s -> 1.5 s total.
        let sched = FaultSchedule::new(0).at(
            0.5,
            FaultKind::ScaleLink {
                link: l,
                factor: 0.5,
            },
        );
        let mut cur = sched.cursor();
        let mut eng = DagEngine::new(vec![]);
        let out = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut cur)
            .unwrap();
        let secs = out.makespan().as_secs();
        assert!((secs - 1.5).abs() < 1e-6, "got {secs}");
    }

    #[test]
    fn node_loss_interrupts_and_cancels_flows() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 100.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 1000.0, SimTime::ZERO, "x", 0, &[]);
        let dag = b.build();
        let sched = FaultSchedule::new(0).at(2.0, FaultKind::NodeLoss { node: 1 });
        let mut cur = sched.cursor();
        let mut eng = DagEngine::new(vec![]);
        let out = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut cur)
            .unwrap();
        assert!(out.interrupted);
        assert_eq!(out.finished, SimTime::from_secs(2.0));
        // The in-flight flow was cancelled, not leaked as background.
        assert_eq!(net.flow_count(), 0);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn flap_window_recovers() {
        use crate::fault::FaultSchedule;
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 100.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 200.0, SimTime::ZERO, "x", 0, &[]);
        let dag = b.build();
        // Down (to the flap floor) during [1, 2): ~100 bytes before, ~0.1
        // bytes during, rest after -> just under 3 s total.
        let sched = FaultSchedule::new(0).flap(l, 1.0, 1.0);
        let mut cur = sched.cursor();
        let mut eng = DagEngine::new(vec![]);
        let out = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut cur)
            .unwrap();
        let secs = out.makespan().as_secs();
        assert!(secs > 2.9 && secs < 3.1, "got {secs}");
        // Healthy run of the same DAG takes 2 s.
        let healthy = DagEngine::new(vec![])
            .run(&mut net, &dag, SimTime::ZERO, None)
            .unwrap();
        assert!((healthy.makespan().as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_cursor_matches_plain_run() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let mut b = DagBuilder::new();
        let c = b.compute(ResourceId(0), SimTime::from_ms(3.0), "gemm", &[]);
        b.transfer(vec![l], 150.0, SimTime::from_us(10.0), "x", 0, &[c]);
        let dag = b.build();
        let mut e1 = DagEngine::new(vec![1]);
        let a = e1.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        let mut e2 = DagEngine::new(vec![1]);
        let b2 = e2
            .run_faulted(
                &mut net,
                &dag,
                SimTime::ZERO,
                None,
                &mut crate::fault::FaultCursor::empty(),
            )
            .unwrap();
        assert_eq!(a.finished, b2.finished);
        assert_eq!(a.task_finish, b2.task_finish);
        assert!(!a.interrupted && !b2.interrupted);
    }

    #[test]
    fn bad_fault_events_surface_typed_errors() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), SimTime::from_ms(1.0), "k", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let sched = FaultSchedule::new(0).at(
            0.0,
            FaultKind::SlowResource {
                resource: 9,
                factor: 0.5,
            },
        );
        let err = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut sched.cursor())
            .unwrap_err();
        assert_eq!(err, SimError::UnknownResource { resource: 9 });
        let sched = FaultSchedule::new(0).at(
            0.0,
            FaultKind::SlowResource {
                resource: 0,
                factor: 0.0,
            },
        );
        let err = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut sched.cursor())
            .unwrap_err();
        assert_eq!(err, SimError::BadRateFactor { resource: 0 });
    }

    #[test]
    fn multi_slot_resources_run_in_parallel_up_to_capacity() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        for _ in 0..6 {
            b.compute(ResourceId(0), SimTime::from_ms(1.0), "k", &[]);
        }
        let dag = b.build();
        // Two slots: 6 tasks take 3 ms.
        let mut eng = DagEngine::new(vec![2]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out.makespan(), SimTime::from_ms(3.0));
    }
}
