//! `planlint` — static analysis (lint) over strategy iteration plans,
//! lowered DAGs, and memory plans, before any simulated flow runs.
//!
//! Usage:
//!
//! ```text
//! planlint [--json] [--level CODE=LEVEL]... [--nodes N | --topology SPEC] golden
//! planlint [--json] [--level CODE=LEVEL]... [--nodes N | --topology SPEC] <strategy>...
//! planlint list
//! ```
//!
//! * `golden` lints the paper's full strategy matrix (the 12 golden
//!   configurations `repro`/`verify.sh` reproduce), each on its paper
//!   cluster shape.
//! * `<strategy>...` lints named registry strategies (see `planlint
//!   list`) on a `--nodes N` cluster (default 1; NVMe strategies get a
//!   two-drive volume on node 0, as in the paper).
//! * `--topology SPEC` lints named strategies against a generated
//!   topology instead — `paper`, `flat:<nodes>`,
//!   `fat-tree:<racks>x<nodes_per_rack>:<oversub>`, or
//!   `pods:<pods>x<islands>x<gpus>:<pod>:<spine>` — spanning all its
//!   nodes (overrides `--nodes`).
//! * `--level ZLxxx=allow|warn|deny` overrides a lint's level.
//!
//! Exit status: 0 when no deny-level findings, 1 when any config has
//! deny findings, 2 on usage errors.

use zerosim_analyzer::{analyze_strategy, AnalysisReport, LintConfig};
use zerosim_hw::{Cluster, ClusterSpec, NvmeId, TopologySpec};
use zerosim_model::GptConfig;
use zerosim_strategies::{
    Calibration, InfinityPlacement, Strategy, StrategyRegistry, TrainOptions, ZeroStage,
};
use zerosim_testkit::json::Json;

/// One lintable configuration: a strategy on a concrete cluster shape.
struct Case {
    label: String,
    cluster: Cluster,
    strategy: Strategy,
    opts: TrainOptions,
}

fn cluster_with_nodes(nodes: usize) -> Cluster {
    Cluster::new(ClusterSpec::default().with_nodes(nodes)).expect("paper cluster spec is valid")
}

fn opts_for(nodes: usize) -> TrainOptions {
    TrainOptions::for_nodes(nodes)
}

/// Attaches the paper's two-drive NVMe volume (node 0, drives 0 and 1)
/// and returns the ZeRO-Infinity strategy striped over it.
fn infinity_on(cluster: &mut Cluster, offload_params: bool) -> Strategy {
    let vol = cluster
        .try_create_volume(vec![
            NvmeId { node: 0, drive: 0 },
            NvmeId { node: 0, drive: 1 },
        ])
        .expect("default spec has two NVMe drives on node 0");
    Strategy::ZeroInfinity {
        offload_params,
        placement: InfinityPlacement::new(vec![vol]),
    }
}

/// The paper's golden strategy matrix: every `(strategy, nodes)` pair the
/// reproduction harness characterizes, plus the ZeRO-Infinity NVMe config.
fn golden_cases() -> Vec<Case> {
    let matrix: Vec<(Strategy, usize)> = vec![
        (Strategy::Ddp, 1),
        (Strategy::Ddp, 2),
        (Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (Strategy::Megatron { tp: 8, pp: 1 }, 2),
        (Strategy::Megatron { tp: 4, pp: 2 }, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::One,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: true,
            },
            1,
        ),
    ];
    let mut cases: Vec<Case> = matrix
        .into_iter()
        .map(|(strategy, nodes)| Case {
            label: format!("{} @ {nodes} node(s)", strategy.name()),
            cluster: cluster_with_nodes(nodes),
            strategy,
            opts: opts_for(nodes),
        })
        .collect();
    let mut cluster = cluster_with_nodes(1);
    let strategy = infinity_on(&mut cluster, true);
    cases.push(Case {
        label: format!("{} @ 1 node(s)", strategy.name()),
        cluster,
        strategy,
        opts: opts_for(1),
    });
    cases
}

/// Every strategy `planlint` can lint by name: the paper registry plus
/// the Megatron shape variants and the NVMe configs the registry leaves
/// to per-run setup.
fn lintable_names() -> Vec<String> {
    let mut names: Vec<String> = StrategyRegistry::paper()
        .names()
        .into_iter()
        .map(str::to_string)
        .collect();
    for extra in [
        Strategy::Megatron { tp: 8, pp: 1 }.name(),
        Strategy::Megatron { tp: 4, pp: 2 }.name(),
        "ZeRO-Infinity (NVME opt)".to_string(),
        "ZeRO-Infinity (NVME opt+param)".to_string(),
    ] {
        if !names.contains(&extra) {
            names.push(extra);
        }
    }
    names
}

/// A named strategy on a `--nodes N` cluster or a `--topology` generated
/// cluster. NVMe strategies get the paper's two-drive volume registered
/// on the cluster first.
fn named_case(name: &str, nodes: usize, topology: Option<&TopologySpec>) -> Option<Case> {
    let (mut cluster, nodes) = match topology {
        Some(t) => {
            let spec = t.build().expect("parsed topology builds");
            (
                Cluster::new(spec).expect("generated topology lowers to a cluster"),
                t.nodes(),
            )
        }
        None => (cluster_with_nodes(nodes), nodes),
    };
    let candidates = [
        Strategy::Ddp,
        Strategy::Megatron { tp: 4, pp: 1 },
        Strategy::Megatron { tp: 8, pp: 1 },
        Strategy::Megatron { tp: 4, pp: 2 },
        Strategy::Zero {
            stage: ZeroStage::One,
        },
        Strategy::Zero {
            stage: ZeroStage::Two,
        },
        Strategy::Zero {
            stage: ZeroStage::Three,
        },
        Strategy::ZeroOffload {
            stage: ZeroStage::Two,
            offload_params: false,
        },
        Strategy::ZeroOffload {
            stage: ZeroStage::Three,
            offload_params: true,
        },
    ];
    let strategy = match name {
        "ZeRO-Infinity (NVME opt)" => infinity_on(&mut cluster, false),
        "ZeRO-Infinity (NVME opt+param)" => infinity_on(&mut cluster, true),
        _ => candidates.iter().find(|s| s.name() == name)?.clone(),
    };
    Some(Case {
        label: format!("{name} @ {nodes} node(s)"),
        cluster,
        strategy,
        opts: opts_for(nodes),
    })
}

fn lint(case: &Case, config: LintConfig) -> Result<AnalysisReport, String> {
    analyze_strategy(
        &case.cluster,
        &case.strategy,
        &GptConfig::paper_model_with_params(1.4),
        &case.opts,
        &Calibration::default(),
        config,
    )
    .map_err(|e| e.to_string())
}

fn usage() -> ! {
    eprintln!(
        "usage: planlint [--json] [--level CODE=LEVEL]... [--nodes N | --topology SPEC] \
         golden|<strategy>..."
    );
    eprintln!("       planlint list");
    eprintln!("strategies: {}", lintable_names().join(", "));
    eprintln!(
        "topologies: paper | flat:<nodes> | fat-tree:<racks>x<npr>:<over> | \
         pods:<pods>x<islands>x<gpus>:<pod>:<spine>"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        json = true;
    }
    let mut config = LintConfig::new();
    while let Some(pos) = args.iter().position(|a| a == "--level") {
        if pos + 1 >= args.len() {
            eprintln!("--level needs a CODE=LEVEL argument");
            std::process::exit(2);
        }
        let directive = args.remove(pos + 1);
        args.remove(pos);
        if let Err(e) = config.apply_directive(&directive) {
            eprintln!("--level {directive}: {e}");
            std::process::exit(2);
        }
    }
    let mut nodes = 1usize;
    if let Some(pos) = args.iter().position(|a| a == "--nodes") {
        if pos + 1 >= args.len() {
            eprintln!("--nodes needs a node count");
            std::process::exit(2);
        }
        let raw = args.remove(pos + 1);
        args.remove(pos);
        nodes = match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--nodes: expected a positive integer, got {raw:?}");
                std::process::exit(2);
            }
        };
    }
    let mut topology: Option<TopologySpec> = None;
    if let Some(pos) = args.iter().position(|a| a == "--topology") {
        if pos + 1 >= args.len() {
            eprintln!("--topology needs a topology spec");
            std::process::exit(2);
        }
        let raw = args.remove(pos + 1);
        args.remove(pos);
        topology = match TopologySpec::parse(&raw) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("--topology {raw}: {e}");
                std::process::exit(2);
            }
        };
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    if args.iter().any(|a| a == "list") {
        for name in lintable_names() {
            println!("{name}");
        }
        return;
    }

    let cases: Vec<Case> = if args.iter().any(|a| a == "golden") {
        if topology.is_some() {
            eprintln!("--topology applies to named strategies; `golden` pins the paper shapes");
            std::process::exit(2);
        }
        golden_cases()
    } else {
        args.iter()
            .map(|name| {
                named_case(name, nodes, topology.as_ref()).unwrap_or_else(|| {
                    eprintln!("unknown strategy {name:?}; run `planlint list`");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let mut denies = 0usize;
    let mut out: Vec<Json> = Vec::new();
    for case in &cases {
        let report = match lint(case, config.clone()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: cannot plan/lower: {e}", case.label);
                std::process::exit(1);
            }
        };
        denies += report.deny_count();
        if json {
            out.push(Json::Obj(vec![
                ("config".into(), Json::Str(case.label.clone())),
                ("report".into(), report.to_json()),
            ]));
        } else {
            let status = if report.deny_count() > 0 {
                "DENY"
            } else if report.warning_count() > 0 {
                "warn"
            } else {
                "ok"
            };
            println!("[{status:>4}] {}", case.label);
            let text = report.render_text();
            if !text.is_empty() {
                for line in text.lines() {
                    println!("       {line}");
                }
            }
        }
    }
    if json {
        println!("{}", Json::Arr(out).render());
    }
    if denies > 0 {
        eprintln!("planlint: {denies} deny-level finding(s)");
        std::process::exit(1);
    }
}
