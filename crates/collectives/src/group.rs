//! Communication groups and topology-aware ring construction.

use zerosim_hw::{Cluster, GpuId, Route};

/// An ordered set of GPU ranks participating in a collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommGroup {
    ranks: Vec<GpuId>,
}

impl CommGroup {
    /// Creates a group from the given ranks.
    ///
    /// # Panics
    /// Panics on an empty rank list or duplicate ranks.
    pub fn new(ranks: Vec<GpuId>) -> Self {
        assert!(!ranks.is_empty(), "a communication group needs ranks");
        let mut dedup = ranks.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ranks.len(), "duplicate ranks in group");
        CommGroup { ranks }
    }

    /// All GPUs of the cluster, in NCCL's node-major ring order.
    pub fn world(cluster: &Cluster) -> Self {
        CommGroup::new(cluster.all_gpus())
    }

    /// The ranks in ring order (node-major, GPU index within node), which
    /// minimizes inter-node hops exactly as NCCL's ring search does on this
    /// topology.
    pub fn ring_order(&self) -> Vec<GpuId> {
        let mut v = self.ranks.clone();
        v.sort_by_key(|g| (g.node, g.gpu));
        v
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True for a single-rank group (collectives degenerate to no-ops).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The ranks in user order.
    pub fn ranks(&self) -> &[GpuId] {
        &self.ranks
    }

    /// True when all ranks live on one node.
    pub fn is_single_node(&self) -> bool {
        let n = self.ranks[0].node;
        self.ranks.iter().all(|g| g.node == n)
    }

    /// Number of parallel rings to build: one per NIC (two) when the group
    /// spans nodes, otherwise one (NVLink rings are already full-bandwidth
    /// per GPU pair in this model).
    pub fn ring_count(&self) -> usize {
        if self.is_single_node() {
            1
        } else {
            2
        }
    }

    /// True when the group spans exactly two nodes with the same rank
    /// count on each.
    pub fn splits_into_two_equal_nodes(&self) -> bool {
        let n = self.node_partition();
        n.len() == 2 && n.iter().all(|p| p.len() == n[0].len())
    }

    /// True when the group spans two or more nodes, each contributing the
    /// same rank count — the precondition of the hierarchical collective
    /// schedule.
    pub fn splits_into_equal_nodes(&self) -> bool {
        let n = self.node_partition();
        n.len() >= 2 && n.iter().all(|p| p.len() == n[0].len())
    }

    /// The ranks grouped by node, node-ascending, each sorted by GPU index.
    pub fn node_partition(&self) -> Vec<Vec<GpuId>> {
        let mut nodes: Vec<usize> = self.ranks.iter().map(|g| g.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
            .into_iter()
            .map(|n| {
                let mut v: Vec<GpuId> =
                    self.ranks.iter().copied().filter(|g| g.node == n).collect();
                v.sort_by_key(|g| g.gpu);
                v
            })
            .collect()
    }
}

/// The route a ring step takes from `a` to its ring successor `b`,
/// using NIC `ring` on both sides for inter-node hops. Inter-node hops are
/// additionally limited to `internode_cap` bytes/second per flow — pass
/// `f64::INFINITY` for raw RDMA-grade efficiency (large-bucket NCCL rings,
/// as plain PyTorch DDP achieves) or a lower value for the partitioned
/// small-bucket traffic DeepSpeed's ZeRO engine issues.
pub fn ring_route(cluster: &Cluster, a: GpuId, b: GpuId, ring: usize, internode_cap: f64) -> Route {
    if a.node == b.node {
        cluster.route(zerosim_hw::MemLoc::Gpu(a), zerosim_hw::MemLoc::Gpu(b))
    } else {
        let mut r = cluster.route_internode_gpu(a, b, ring, ring);
        r.cap = r.cap.min(internode_cap);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::default()).unwrap()
    }

    #[test]
    fn world_group_is_node_major() {
        let c = cluster();
        let g = CommGroup::world(&c);
        assert_eq!(g.len(), 8);
        let order = g.ring_order();
        assert_eq!(order[0], GpuId { node: 0, gpu: 0 });
        assert_eq!(order[3], GpuId { node: 0, gpu: 3 });
        assert_eq!(order[4], GpuId { node: 1, gpu: 0 });
        assert!(!g.is_single_node());
        assert_eq!(g.ring_count(), 2);
    }

    #[test]
    fn single_node_group() {
        let c = cluster();
        let g = CommGroup::new(c.node_gpus(0));
        assert!(g.is_single_node());
        assert_eq!(g.ring_count(), 1);
    }

    #[test]
    fn ring_route_intra_vs_inter() {
        let c = cluster();
        let intra = ring_route(
            &c,
            GpuId { node: 0, gpu: 0 },
            GpuId { node: 0, gpu: 1 },
            0,
            f64::INFINITY,
        );
        assert_eq!(intra.hops(), 1);
        let inter = ring_route(
            &c,
            GpuId { node: 0, gpu: 3 },
            GpuId { node: 1, gpu: 0 },
            0,
            4.0e9,
        );
        assert_eq!(inter.cap, 4.0e9);
        assert!(inter.hops() > 4);
    }

    #[test]
    #[should_panic(expected = "duplicate ranks")]
    fn duplicate_ranks_panic() {
        let g = GpuId { node: 0, gpu: 0 };
        CommGroup::new(vec![g, g]);
    }
}
