//! ZL004 — bandwidth feasibility and wire- vs protocol-bound link
//! classification.
//!
//! Statically expands every flow-generating op (collectives along their
//! ring routes, tier transfers along `hw` routes, striped volume I/O)
//! and aggregates per-link demand. Each loaded link is then classified:
//! **wire-bound** when the physical rate is the binding constraint, or
//! **protocol-bound** when a per-flow engine-efficiency ceiling (the
//! paper's DeepSpeed/NCCL caps) binds below the wire — statically
//! reproducing the paper's headline observation that the RoCE fabric is
//! protocol-bound for ZeRO while NVLink stays wire-bound.
//!
//! Deny findings are *infeasibilities*: endpoints with no modeled path,
//! off-cluster collective ranks, or demand across a zero-capacity link.
//!
//! Codec-aware pricing: ops carrying a declared
//! [`zerosim_strategies::Codec`] put only `bytes x ratio` on the wire, so
//! demand is accumulated at the encoded size — this is how a qwZ/qgZ
//! plan's statically-reported inter-node volume drops below plain
//! ZeRO-3's without any change to the payload semantics.

use std::collections::HashMap;

use zerosim_collectives::ring_route;
use zerosim_hw::Cluster;
use zerosim_simkit::LinkId;
use zerosim_strategies::PlanOp;

use crate::diag::{LintCode, Severity, Site};
use crate::pass::{Artifacts, BoundKind, LinkVerdict, Pass, Sink};

/// ZL004 (see module docs).
#[derive(Debug)]
pub struct BandwidthFeasibilityPass;

/// Attainment (per-flow cap / wire rate) below which a protocol-bound
/// link is advisory-flagged: the wire is effectively dark. Only the
/// *bottleneck-wire* hop of a route is judged — the paper's worst
/// calibrated engine (ZeRO-3 at 0.85 GB/s over 23.25 GB/s RoCE) attains
/// ~3.7% on the RoCE bottleneck, so golden configs sit above this line.
const DARK_WIRE_ATTAINMENT: f64 = 0.02;

#[derive(Debug, Default, Clone, Copy)]
struct Load {
    demand_bytes: f64,
    flows: usize,
    flow_cap: f64,
    /// True when some flow's slowest *wire* is this link — the dark-wire
    /// advisory only makes sense there. The fast intra-node hops of an
    /// inter-node route are always far below their wire rate; that is
    /// the bottleneck's fault, not a protocol problem on the fast hop.
    route_bottleneck: bool,
}

/// Accumulates one flow's demand across its route. The per-flow cap and
/// the route's minimum wire capacity come from the caller so the
/// bottleneck hop can be identified.
fn add_route(
    loads: &mut HashMap<LinkId, Load>,
    cluster: &Cluster,
    links: &[LinkId],
    bytes: f64,
    cap: f64,
) {
    let min_wire = links
        .iter()
        .map(|l| cluster.net().link_capacity(*l))
        .fold(f64::INFINITY, f64::min);
    for link in links {
        let wire = cluster.net().link_capacity(*link);
        let e = loads.entry(*link).or_insert(Load {
            demand_bytes: 0.0,
            flows: 0,
            flow_cap: f64::INFINITY,
            route_bottleneck: false,
        });
        e.demand_bytes += bytes;
        e.flows += 1;
        e.flow_cap = e.flow_cap.min(cap);
        // Tolerant equality: equal-capacity wires are all bottlenecks.
        e.route_bottleneck |= wire <= min_wire * (1.0 + 1e-9);
    }
}

fn on_cluster(cluster: &Cluster, g: zerosim_hw::GpuId) -> bool {
    g.node < cluster.spec().nodes && g.gpu < cluster.spec().gpus_per_node
}

impl Pass for BandwidthFeasibilityPass {
    fn code(&self) -> LintCode {
        LintCode::BandwidthFeasibility
    }

    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>) {
        let Some(plan) = art.plan else {
            return;
        };
        let cluster = art.cluster;
        let mut loads: HashMap<LinkId, Load> = HashMap::new();

        for (i, node) in plan.nodes().iter().enumerate() {
            // Declared codecs shrink the wire volume to the encoded size.
            let ratio = plan.codec_ratio_at(i);
            match &node.op {
                PlanOp::Collective {
                    kind,
                    group,
                    bytes,
                    cap,
                } => {
                    let n = group.len();
                    if n <= 1 {
                        continue;
                    }
                    if let Some(bad) = group.ranks().iter().find(|g| !on_cluster(cluster, **g)) {
                        sink.report(
                            LintCode::BandwidthFeasibility,
                            Site::PlanOp(i),
                            format!("collective rank {bad:?} is not on the cluster"),
                            "collectives may only span GPUs the hardware model has".to_string(),
                        );
                        continue;
                    }
                    // Static ring model: each rank sends its wire share to
                    // its ring successor, split evenly across the rings.
                    let order = group.ring_order();
                    let rings = group.ring_count().max(1);
                    #[allow(clippy::cast_precision_loss)]
                    let per_ring = kind.bytes_sent_per_rank(n, *bytes * ratio) / rings as f64;
                    for w in 0..n {
                        let (a, b) = (order[w], order[(w + 1) % n]);
                        for ring in 0..rings {
                            let route = ring_route(cluster, a, b, ring, *cap);
                            add_route(&mut loads, cluster, &route.links, per_ring, route.cap);
                        }
                    }
                }
                PlanOp::TierTransfer {
                    src, dst, bytes, ..
                } => match cluster.try_route(*src, *dst) {
                    Ok(route) => {
                        let wire_bytes = (bytes * ratio).max(1.0);
                        add_route(&mut loads, cluster, &route.links, wire_bytes, route.cap);
                    }
                    Err(e) => sink.report(
                        LintCode::BandwidthFeasibility,
                        Site::PlanOp(i),
                        format!("transfer has no feasible route: {e}"),
                        "fix the endpoints or bounce through a supported tier".to_string(),
                    ),
                },
                PlanOp::VolumeIo {
                    volume,
                    socket,
                    dir,
                    bytes,
                    ..
                } => match cluster.try_volume_io_routes(*volume, *socket, *dir) {
                    Ok(routes) => {
                        #[allow(clippy::cast_precision_loss)]
                        let per_drive = (bytes * ratio / routes.len().max(1) as f64).max(1.0);
                        for route in &routes {
                            add_route(&mut loads, cluster, &route.links, per_drive, route.cap);
                        }
                    }
                    Err(e) => sink.report(
                        LintCode::BandwidthFeasibility,
                        Site::PlanOp(i),
                        format!("volume I/O has no feasible route: {e}"),
                        "register the volume on the issuing node".to_string(),
                    ),
                },
                _ => {}
            }
        }

        // Classify every loaded link; hottest first so the verdict order
        // can be cross-checked against the simulated hot-link ranking.
        let mut entries: Vec<(LinkId, Load)> = loads.into_iter().collect();
        entries.sort_by(|a, b| {
            b.1.demand_bytes
                .partial_cmp(&a.1.demand_bytes)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.index().cmp(&b.0.index()))
        });
        for (link, load) in entries {
            let wire = cluster.net().link_capacity(link);
            let name = cluster.net().link_name(link).to_string();
            if wire <= 0.0 {
                sink.report(
                    LintCode::BandwidthFeasibility,
                    Site::Link(name.clone()),
                    format!(
                        "plan pushes {:.2} GB across zero-capacity link",
                        load.demand_bytes / 1e9
                    ),
                    "flows across a dead link never finish".to_string(),
                );
            }
            let bound = if load.flow_cap < wire {
                BoundKind::Protocol
            } else {
                BoundKind::Wire
            };
            if bound == BoundKind::Protocol && wire > 0.0 && load.route_bottleneck {
                let attainment = load.flow_cap / wire;
                if attainment < DARK_WIRE_ATTAINMENT {
                    sink.report_at_most(
                        LintCode::BandwidthFeasibility,
                        Severity::Warning,
                        Site::Link(name.clone()),
                        format!(
                            "per-flow cap {:.2} GB/s attains only {:.1}% of the {:.2} GB/s wire",
                            load.flow_cap / 1e9,
                            attainment * 100.0,
                            wire / 1e9
                        ),
                        "the protocol ceiling leaves the wire dark; raise the engine \
                         efficiency or use fewer, larger flows"
                            .to_string(),
                    );
                }
            }
            sink.push_link_verdict(LinkVerdict {
                name,
                wire_capacity: wire,
                flow_cap: load.flow_cap,
                demand_bytes: load.demand_bytes,
                flows: load.flows,
                bound,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use crate::pass::{AnalysisReport, PassManager};
    use zerosim_collectives::{CollectiveKind, CommGroup};
    use zerosim_hw::{ClusterSpec, GpuId, IoDir, MemLoc, NvmeId, SocketId};
    use zerosim_strategies::{IterPlan, PhaseStage};

    fn run(cluster: &Cluster, plan: &IterPlan) -> AnalysisReport {
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(BandwidthFeasibilityPass));
        pm.run(&Artifacts::new(cluster).with_plan(plan))
    }

    #[test]
    fn single_node_allreduce_is_wire_bound_on_nvlink() {
        let cluster = Cluster::new(ClusterSpec::default().with_nodes(1)).unwrap();
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        plan.push(
            PlanOp::Collective {
                kind: CollectiveKind::AllReduce,
                group: CommGroup::world(&cluster),
                bytes: 2.8e9,
                cap: f64::INFINITY,
            },
            &[],
        );
        let r = run(&cluster, &plan);
        assert!(r.is_clean());
        assert!(!r.links.is_empty());
        for v in &r.links {
            assert_eq!(v.bound, BoundKind::Wire, "{}", v.name);
            assert!(v.name.contains("nvlink"), "{}", v.name);
        }
    }

    #[test]
    fn capped_internode_collective_is_protocol_bound_on_roce() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        plan.push(
            PlanOp::Collective {
                kind: CollectiveKind::AllReduce,
                group: CommGroup::world(&cluster),
                bytes: 2.8e9,
                cap: 1.3e9, // DeepSpeed engine efficiency
            },
            &[],
        );
        let r = run(&cluster, &plan);
        assert!(r.is_clean(), "{}", r.render_text());
        let roce: Vec<&LinkVerdict> = r.links.iter().filter(|v| v.name.contains("roce")).collect();
        assert!(!roce.is_empty());
        for v in roce {
            assert_eq!(v.bound, BoundKind::Protocol, "{}", v.name);
            assert!(v.flow_cap <= 1.3e9);
        }
        // Intra-node NVLink hops of the same ring stay wire-bound.
        assert!(r
            .links
            .iter()
            .filter(|v| v.name.contains("nvlink"))
            .all(|v| v.bound == BoundKind::Wire));
    }

    #[test]
    fn unroutable_transfer_and_bad_rank_fire() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Forward, 0);
        plan.push(
            PlanOp::TierTransfer {
                src: MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
                dst: MemLoc::Nvme(NvmeId { node: 0, drive: 0 }),
                bytes: 1e9,
                label: "bad",
                track: 0,
            },
            &[],
        );
        plan.push(
            PlanOp::Collective {
                kind: CollectiveKind::AllGather,
                group: CommGroup::new(vec![GpuId { node: 0, gpu: 0 }, GpuId { node: 7, gpu: 0 }]),
                bytes: 1e9,
                cap: f64::INFINITY,
            },
            &[],
        );
        let r = run(&cluster, &plan);
        assert_eq!(r.deny_count(), 2);
        assert_eq!(r.diagnostics[0].site, Site::PlanOp(0));
        assert!(r.diagnostics[0].message.contains("no feasible route"));
        assert_eq!(r.diagnostics[1].site, Site::PlanOp(1));
        assert!(r.diagnostics[1].message.contains("not on the cluster"));
    }

    #[test]
    fn volume_io_loads_both_drives() {
        let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let v = cluster.create_volume(vec![
            NvmeId { node: 0, drive: 0 },
            NvmeId { node: 0, drive: 1 },
        ]);
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Step, 0);
        plan.push(
            PlanOp::VolumeIo {
                volume: v,
                socket: SocketId { node: 0, socket: 1 },
                dir: IoDir::Write,
                bytes: 8e9,
                label: "nvme_write",
                track: 0,
            },
            &[],
        );
        let r = run(&cluster, &plan);
        assert!(r.is_clean());
        let dev: Vec<&LinkVerdict> = r
            .links
            .iter()
            .filter(|l| l.name.contains("dev.w"))
            .collect();
        assert_eq!(dev.len(), 2);
        for d in dev {
            assert!((d.demand_bytes - 4e9).abs() < 1.0);
        }
    }
}
