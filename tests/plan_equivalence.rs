//! Golden equivalence of the iteration-plan pipeline.
//!
//! The IR refactor must be **observationally invisible**: for every paper
//! strategy configuration, lowering a cached plan once and re-stamping
//! per seed has to produce the same simulated numbers — makespan, total
//! wire bytes, task count — as building a fresh DAG per iteration
//! (tolerance 0). Plus the plan-level conservation properties the
//! validator enforces, checked per strategy family by the testkit
//! harness.

use zerosim_hw::{Cluster, ClusterSpec, NvmeId};
use zerosim_model::GptConfig;
use zerosim_simkit::{DagEngine, SimTime};
use zerosim_strategies::{
    lower, Calibration, InfinityPlacement, IterCtx, Strategy, StrategyPlan, StrategyRegistry,
    TrainOptions, ZeroStage,
};
use zerosim_testkit::gen::{u64_range, usize_range};
use zerosim_testkit::{prop, prop_assert};

/// The paper's strategy matrix (plus NVMe variants needing volumes).
fn paper_configs() -> Vec<(Strategy, usize)> {
    vec![
        (Strategy::Ddp, 1),
        (Strategy::Ddp, 2),
        (Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (Strategy::Megatron { tp: 8, pp: 1 }, 2),
        (Strategy::Megatron { tp: 4, pp: 2 }, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::One,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: true,
            },
            1,
        ),
    ]
}

fn infinity_cluster() -> (Cluster, Strategy) {
    let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let d = |drive| NvmeId { node: 0, drive };
    let vol = cluster.create_volume(vec![d(0), d(1)]);
    let strategy = Strategy::ZeroInfinity {
        offload_params: true,
        placement: InfinityPlacement::new(vec![vol]),
    };
    (cluster, strategy)
}

fn opts_for(nodes: usize) -> TrainOptions {
    if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    }
}

/// Makespan + total wire bytes + task count of one stamped execution.
fn observe(cluster: &Cluster, dag: &zerosim_simkit::Dag) -> (f64, f64, usize) {
    let mut fresh = Cluster::new(cluster.spec().clone()).unwrap();
    let mut eng = DagEngine::new(fresh.resource_slots());
    let out = eng.run(fresh.net_mut(), dag, SimTime::ZERO, None).unwrap();
    (
        out.makespan().as_secs(),
        dag.total_transfer_bytes(),
        dag.len(),
    )
}

fn assert_equivalent(cluster: &Cluster, strategy: &Strategy, opts: &TrainOptions) {
    let model = GptConfig::paper_model_with_params(1.4);
    let calib = Calibration::default();
    let ctx = IterCtx {
        cluster,
        model: &model,
        opts,
        calib: &calib,
    };
    let plan = strategy.plan_iteration(&ctx).unwrap();
    plan.validate(cluster).unwrap();
    let mut cached = lower(&plan, cluster, &calib).unwrap();
    for seed in [0u64, 1, 7, 42] {
        // Cached: lower once, re-stamp per seed.
        let (mk_a, bytes_a, len_a) = observe(cluster, cached.stamp(seed));
        // Fresh: full plan → lower → stamp pipeline per seed (what the
        // seed implementation did every iteration).
        let o = opts.with_jitter_seed(seed);
        let dag = strategy
            .build_iteration(cluster, &model, &o, &calib)
            .unwrap();
        let (mk_b, bytes_b, len_b) = observe(cluster, &dag);
        // Tolerance 0: bit-identical structure and timing.
        assert_eq!(len_a, len_b, "{} task count", strategy.name());
        assert_eq!(bytes_a, bytes_b, "{} wire bytes", strategy.name());
        assert_eq!(mk_a, mk_b, "{} makespan (seed {seed})", strategy.name());
    }
}

#[test]
fn restamped_plans_match_fresh_builds_for_every_paper_config() {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    for (strategy, nodes) in paper_configs() {
        assert_equivalent(&cluster, &strategy, &opts_for(nodes));
    }
}

#[test]
fn restamped_plan_matches_fresh_build_for_zero_infinity() {
    let (cluster, strategy) = infinity_cluster();
    assert_equivalent(&cluster, &strategy, &opts_for(1));
}

#[test]
fn zero3_moves_about_fifty_percent_more_collective_payload_than_ddp() {
    // Sec. IV-C1: ZeRO-3 adds parameter all-gathers (forward *and*
    // backward re-gather in this DeepSpeed configuration) on top of the
    // gradient reduction all strategies share — at least 50% more
    // collective payload than DDP, and bounded by the 3-pass worst case.
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let model = GptConfig::paper_model_with_params(1.4);
    let opts = TrainOptions::single_node();
    let calib = Calibration::default();
    let ctx = IterCtx {
        cluster: &cluster,
        model: &model,
        opts: &opts,
        calib: &calib,
    };
    let payload = |s: &Strategy| s.plan_iteration(&ctx).unwrap().collective_payload_bytes();
    let ddp = payload(&Strategy::Ddp);
    let z3 = payload(&Strategy::Zero {
        stage: ZeroStage::Three,
    });
    let ratio = z3 / ddp;
    assert!(
        (1.5..=3.05).contains(&ratio),
        "z3/ddp payload ratio {ratio:.3}, expected ≥1.5"
    );
}

#[test]
fn registry_covers_the_paper_matrix_and_all_plans_validate() {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let model = GptConfig::paper_model_with_params(1.4);
    let opts = TrainOptions::single_node();
    let calib = Calibration::default();
    let ctx = IterCtx {
        cluster: &cluster,
        model: &model,
        opts: &opts,
        calib: &calib,
    };
    let reg = StrategyRegistry::paper();
    assert!(reg.len() >= 7);
    for (name, s) in reg.iter() {
        let plan = s.plan_iteration(&ctx).unwrap_or_else(|e| {
            panic!("{name}: {e}");
        });
        plan.validate(&cluster).unwrap();
        assert_eq!(s.display_name(), name);
    }
}

// ---------- per-family validation properties ----------

prop! {
    /// DDP plans validate for any depth/batch/accumulation combination.
    #[cases(48)]
    fn ddp_plans_always_validate(
        layers in usize_range(1, 120),
        batch in usize_range(1, 8),
        accum in usize_range(1, 4),
    ) {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(layers);
        let mut opts = TrainOptions::single_node();
        opts.per_gpu_batch = batch;
        opts.grad_accum = accum;
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let plan = Strategy::Ddp.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
        // Gradient payload: one all-reduce per bucket covering every
        // layer and embedding parameter exactly once (the final norm's
        // handful of parameters ride inside the last bucket's fusion).
        let expected =
            2.0 * (model.num_layers as f64 * model.layer_params() + model.embedding_params());
        let got = plan.collective_payload_bytes();
        prop_assert!((got - expected).abs() / expected < 1e-9);
    }

    /// Megatron plans validate for every feasible (tp, pp) split of the
    /// single-node GPU count.
    #[cases(48)]
    fn megatron_plans_always_validate(
        layers in usize_range(4, 80),
        pick in usize_range(0, 5),
    ) {
        let (tp, pp) = [(4, 1), (2, 2), (1, 4), (2, 1), (1, 1), (4, 1)][pick];
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(layers);
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let plan = Strategy::Megatron { tp, pp }.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
    }

    /// ZeRO plans validate across stages and node counts, and stage 3
    /// always moves at least as much collective payload as stage 1.
    #[cases(48)]
    fn zero_plans_always_validate(
        layers in usize_range(1, 120),
        stage_idx in usize_range(0, 3),
        seed in u64_range(0, u64::MAX),
    ) {
        let stage = [ZeroStage::One, ZeroStage::Two, ZeroStage::Three][stage_idx];
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(layers);
        let opts = TrainOptions::single_node().with_jitter_seed(seed);
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let s = Strategy::Zero { stage };
        let plan = s.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
        let z1 = Strategy::Zero { stage: ZeroStage::One }
            .plan_iteration(&ctx)
            .unwrap();
        prop_assert!(
            plan.collective_payload_bytes() >= z1.collective_payload_bytes() * (1.0 - 1e-9)
        );
    }

    /// ZeRO-Offload plans validate and always stage bytes through the
    /// host (CPU Adam traffic), unlike GPU-resident ZeRO.
    #[cases(48)]
    fn zero_offload_plans_always_validate(
        layers in usize_range(1, 80),
        stage_idx in usize_range(0, 3),
        offload_params in usize_range(0, 2),
    ) {
        let stage = [ZeroStage::One, ZeroStage::Two, ZeroStage::Three][stage_idx];
        // Parameter offload requires ZeRO-3 (Table I).
        let offload_params = offload_params == 1 && stage == ZeroStage::Three;
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(layers);
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let s = Strategy::ZeroOffload { stage, offload_params };
        let plan = s.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
        let resident = Strategy::Zero { stage }.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.staging_bytes() > resident.staging_bytes());
    }

    /// ZeRO-Infinity plans validate whenever a volume placement exists,
    /// and are rejected with a typed error when it is missing.
    #[cases(32)]
    fn zero_infinity_plans_validate_with_volumes(
        layers in usize_range(1, 80),
        offload_params in usize_range(0, 2),
    ) {
        let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let d = |drive| NvmeId { node: 0, drive };
        let vol = cluster.create_volume(vec![d(0), d(1)]);
        let model = GptConfig::paper_model(layers);
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let s = Strategy::ZeroInfinity {
            offload_params: offload_params == 1,
            placement: InfinityPlacement::new(vec![vol]),
        };
        let plan = s.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
        // NVMe traffic must actually hit the volume.
        prop_assert!(plan.staging_bytes() > 0.0);
    }
}
