//! `zerosim-core` — the characterization engine reproducing the paper's
//! measurement methodology.
//!
//! [`TrainingSim`] owns a simulated cluster and runs strategies on it,
//! producing [`TrainingReport`]s with:
//!
//! * compute throughput (model FLOPs / iteration time, the DeepSpeed
//!   FLOPS-profiler convention, Sec. III-B3);
//! * per-interconnect bandwidth statistics and utilization patterns
//!   (Table IV, Figs. 9/10/12);
//! * memory placement per tier (Sec. IV-D / V);
//! * device timelines (Fig. 5).
//!
//! [`max_model_size`] performs the achieved-model-size search of Fig. 6.
//!
//! ```
//! use zerosim_core::{max_model_size, TrainingSim};
//! use zerosim_hw::ClusterSpec;
//! use zerosim_strategies::{Calibration, Strategy, TrainOptions, ZeroStage};
//!
//! # fn main() -> Result<(), zerosim_core::CoreError> {
//! let sim = TrainingSim::new(ClusterSpec::default())?;
//! let cap = max_model_size(
//!     sim.cluster(),
//!     &Strategy::Zero { stage: ZeroStage::Three },
//!     &TrainOptions::single_node(),
//!     sim.calibration(),
//! ).expect("fits");
//! assert!(cap.billions() > 5.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod capacity;
mod cost;
mod energy;
mod engine;
mod error;
mod faults;
mod fleet;
mod report;
mod search;
mod serve;
mod sweep;
mod timeline;

pub use analysis::{attribute_all_gpus, attribute_gpu, attribute_worst_gpu, TimeBreakdown};
pub use capacity::{max_model_size, try_max_model_size, CapacityResult};
pub use cost::{CostModel, CostReport};
pub use energy::{EnergyReport, PowerModel};
pub use engine::{RunConfig, TrainingSim};
pub use error::CoreError;
pub use faults::{FaultConfig, FaultScenario};
pub use fleet::{
    daly_interval_s, fleet_search, interval_iters, run_ensemble, waste_fraction,
    young_daly_bracket, young_interval_s, BracketPoint, ComponentHazard, EnsembleConfig,
    EnsembleReport, EnsembleStats, FleetCandidate, FleetCostConfig, FleetProfile, FleetReport,
    HazardDist, YoungDalyBracket,
};
pub use report::{BandwidthReport, HotLink, ResilienceMetrics, TrainingReport};
pub use search::{search_plans, CandidateOutcome, PlanCandidate, SearchConfig, SearchReport};
pub use serve::{
    serve, ArrivalProcess, Request, ServeReport, ServeRun, ServeRunner, ServeSpec, TraceConfig,
};
pub use sweep::{SweepRun, SweepRunner, SweepSpec};
pub use timeline::{profile_tracks, to_chrome_trace, TrackProfile};

// Re-export the pieces callers need alongside the engine.
pub use zerosim_simkit::{EngineMode, EngineStats, FaultKind, FaultSchedule};
pub use zerosim_strategies::{
    Calibration, CheckpointSink, IterCtx, IterPlan, LoweredPlan, RecoveryPolicy, ServingStrategy,
    Strategy, StrategyError, StrategyPlan, StrategyRegistry, TrainOptions,
};
