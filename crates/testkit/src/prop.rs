//! The property runner: draws cases, checks the property, and shrinks
//! failures to minimal counterexamples.
//!
//! # Environment knobs
//!
//! * `ZEROSIM_PT_CASES` — overrides the number of cases for every
//!   property (e.g. `ZEROSIM_PT_CASES=1000 cargo test`).
//! * `ZEROSIM_PT_SEED` — overrides the base seed (decimal or `0x` hex).
//!   On failure the runner prints the exact value to export to replay
//!   the failing run.
//!
//! Each property derives its own case stream from the base seed and the
//! property name, so adding or reordering properties never perturbs the
//! cases another property sees.

use crate::gen::Gen;
use crate::rng::{splitmix64, Rng};

/// The default base seed. Fixed so `cargo test` is deterministic run to
/// run; override with `ZEROSIM_PT_SEED` to explore.
pub const DEFAULT_SEED: u64 = 0x5EED_0001_D5EE_D500;

/// Configuration for one property check.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed for the case stream.
    pub seed: u64,
    /// Upper bound on accepted shrink steps (candidates that still
    /// fail); guards against pathological shrink loops.
    pub max_shrink_steps: u32,
}

impl Config {
    /// Builds a config from the environment, with `default_cases` used
    /// when `ZEROSIM_PT_CASES` is unset.
    pub fn from_env(default_cases: u32) -> Self {
        let cases = std::env::var("ZEROSIM_PT_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .unwrap_or(default_cases)
            .max(1);
        let seed = std::env::var("ZEROSIM_PT_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(DEFAULT_SEED);
        Config {
            cases,
            seed,
            max_shrink_steps: 1024,
        }
    }

    /// This config with a different case count (still overridable by the
    /// environment only through [`Config::from_env`]).
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases.max(1);
        self
    }

    /// This config with an explicit seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::from_env(64)
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        s.replace('_', "").parse::<u64>().ok()
    }
}

/// Outcome of one property application: `Ok(())` passes, `Err(msg)`
/// fails with a diagnostic.
pub type PropResult = Result<(), String>;

/// Statistics from a completed (passing) check, for tests of the runner
/// itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Cases executed.
    pub cases_run: u32,
}

/// Detailed failure report, produced by [`check_outcome`].
#[derive(Debug, Clone)]
pub struct Failure<V> {
    /// Zero-based index of the failing case.
    pub case: u32,
    /// Base seed that reproduces the run.
    pub seed: u64,
    /// The counterexample as originally drawn.
    pub original: V,
    /// The counterexample after shrinking.
    pub minimal: V,
    /// The property's error message for the minimal counterexample.
    pub message: String,
    /// Number of successful shrink steps taken.
    pub shrink_steps: u32,
}

/// Runs `property` against `cases` random values from `gen`; panics with
/// a replayable report on the first failure (after shrinking).
///
/// The panic message includes the base seed formatted as a
/// `ZEROSIM_PT_SEED=…` assignment, so the failing run can be replayed
/// verbatim.
pub fn check<G, P>(name: &str, config: &Config, gen: &G, property: P) -> CheckStats
where
    G: Gen,
    P: Fn(&G::Value) -> PropResult,
{
    match check_outcome(name, config, gen, property) {
        Ok(stats) => stats,
        Err(fail) => {
            panic!(
                "\nproperty '{name}' failed (case {case}/{cases})\n\
                 \x20 replay with: ZEROSIM_PT_SEED={seed:#x} ZEROSIM_PT_CASES={cases}\n\
                 \x20 minimal counterexample ({steps} shrink steps): {minimal:?}\n\
                 \x20 original counterexample: {original:?}\n\
                 \x20 error: {message}\n",
                case = fail.case + 1,
                cases = config.cases,
                seed = fail.seed,
                steps = fail.shrink_steps,
                minimal = fail.minimal,
                original = fail.original,
                message = fail.message,
            );
        }
    }
}

/// Like [`check`] but returns the failure instead of panicking — used by
/// the testkit's own tests to assert on shrinking behaviour.
pub fn check_outcome<G, P>(
    name: &str,
    config: &Config,
    gen: &G,
    property: P,
) -> Result<CheckStats, Failure<G::Value>>
where
    G: Gen,
    P: Fn(&G::Value) -> PropResult,
{
    // Derive a per-property stream: base seed mixed with the property
    // name so distinct properties see uncorrelated cases.
    let mut h = config.seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in name.bytes() {
        h = splitmix64(&mut h) ^ u64::from(b);
    }
    let mut rng = Rng::new(splitmix64(&mut h));

    for case in 0..config.cases {
        // Each case gets a forked stream so a property that consumes a
        // variable amount of randomness cannot skew later cases.
        let mut case_rng = rng.fork();
        let value = gen.generate(&mut case_rng);
        if let Err(first_msg) = property(&value) {
            let (minimal, message, shrink_steps) = shrink_failure(
                gen,
                &property,
                value.clone(),
                first_msg,
                config.max_shrink_steps,
            );
            return Err(Failure {
                case,
                seed: config.seed,
                original: value,
                minimal,
                message,
                shrink_steps,
            });
        }
    }
    Ok(CheckStats {
        cases_run: config.cases,
    })
}

/// Greedy shrink: repeatedly move to the first candidate that still
/// fails, until no candidate fails or the step budget runs out.
fn shrink_failure<G, P>(
    gen: &G,
    property: &P,
    mut current: G::Value,
    mut message: String,
    max_steps: u32,
) -> (G::Value, String, u32)
where
    G: Gen,
    P: Fn(&G::Value) -> PropResult,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in gen.shrink(&current) {
            if let Err(msg) = property(&candidate) {
                current = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break; // local minimum: no candidate still fails
    }
    (current, message, steps)
}

/// Asserts a condition inside a property, returning `Err` with a
/// formatted message on failure (the in-house `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Asserts equality inside a property (the in-house `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Declares a property-based `#[test]` with `proptest!`-style syntax:
///
/// ```ignore
/// zerosim_testkit::prop! {
///     #[cases(64)]
///     fn addition_commutes(a in u64_range(0, 1000), b in u64_range(0, 1000)) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// The body runs once per case with each binder destructured from its
/// generator; use `prop_assert!` / `prop_assert_eq!` (or `return
/// Err(...)`) to fail a case. Case counts default to 64 and can be
/// overridden per-property with `#[cases(n)]` or globally with
/// `ZEROSIM_PT_CASES`.
#[macro_export]
macro_rules! prop {
    // Entry points with and without the #[cases(n)] attribute; peel one
    // property at a time so a block can declare several.
    () => {};
    // Doc comments desugar to #[doc = "…"]; accept and drop them so
    // properties can be documented like ordinary tests.
    (#[doc $($d:tt)*] $($rest:tt)*) => {
        $crate::prop!($($rest)*);
    };
    (#[cases($n:expr)] fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $crate::prop!(@one $n, $name, ($($arg in $gen),+), $body);
        $crate::prop!($($rest)*);
    };
    (fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $crate::prop!(@one 64, $name, ($($arg in $gen),+), $body);
        $crate::prop!($($rest)*);
    };
    // Single binder: use the generator directly.
    (@one $n:expr, $name:ident, ($a:ident in $ga:expr), $body:block) => {
        #[test]
        fn $name() {
            let config = $crate::prop::Config::from_env($n);
            let gen = $ga;
            $crate::prop::check(stringify!($name), &config, &gen, |value| {
                let $a = value.clone();
                $body
                Ok(())
            });
        }
    };
    // Two binders.
    (@one $n:expr, $name:ident, ($a:ident in $ga:expr, $b:ident in $gb:expr), $body:block) => {
        #[test]
        fn $name() {
            let config = $crate::prop::Config::from_env($n);
            let gen = $crate::gen::tuple2($ga, $gb);
            $crate::prop::check(stringify!($name), &config, &gen, |value| {
                let ($a, $b) = value.clone();
                $body
                Ok(())
            });
        }
    };
    // Three binders.
    (@one $n:expr, $name:ident, ($a:ident in $ga:expr, $b:ident in $gb:expr, $c:ident in $gc:expr), $body:block) => {
        #[test]
        fn $name() {
            let config = $crate::prop::Config::from_env($n);
            let gen = $crate::gen::tuple3($ga, $gb, $gc);
            $crate::prop::check(stringify!($name), &config, &gen, |value| {
                let ($a, $b, $c) = value.clone();
                $body
                Ok(())
            });
        }
    };
    // Four binders.
    (@one $n:expr, $name:ident, ($a:ident in $ga:expr, $b:ident in $gb:expr, $c:ident in $gc:expr, $d:ident in $gd:expr), $body:block) => {
        #[test]
        fn $name() {
            let config = $crate::prop::Config::from_env($n);
            let gen = $crate::gen::tuple4($ga, $gb, $gc, $gd);
            $crate::prop::check(stringify!($name), &config, &gen, |value| {
                let ($a, $b, $c, $d) = value.clone();
                $body
                Ok(())
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{u64_range, usize_range, vec_of};

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config {
            cases: 100,
            seed: 1,
            max_shrink_steps: 100,
        };
        let stats = check("always_true", &cfg, &u64_range(0, 10), |_| Ok(()));
        assert_eq!(stats.cases_run, 100);
    }

    #[test]
    fn same_seed_finds_same_counterexample() {
        let cfg = Config {
            cases: 1000,
            seed: 77,
            max_shrink_steps: 0, // no shrinking: compare raw draws
        };
        let run = || {
            check_outcome("det", &cfg, &u64_range(0, 1_000_000), |v| {
                if *v >= 500_000 {
                    Err("too big".into())
                } else {
                    Ok(())
                }
            })
            .unwrap_err()
        };
        let a = run();
        let b = run();
        assert_eq!(a.original, b.original);
        assert_eq!(a.case, b.case);
    }

    /// Shrinking a seeded known-failing property converges to the
    /// minimal counterexample: the threshold itself.
    #[test]
    fn shrink_converges_to_threshold() {
        let cfg = Config {
            cases: 200,
            seed: 3,
            max_shrink_steps: 1024,
        };
        let fail = check_outcome("threshold", &cfg, &u64_range(0, 1_000_000), |v| {
            if *v >= 1234 {
                Err(format!("{v} >= 1234"))
            } else {
                Ok(())
            }
        })
        .expect_err("property must fail");
        assert_eq!(
            fail.minimal, 1234,
            "greedy shrink must land exactly on the smallest failing value"
        );
        assert!(fail.original >= 1234);
    }

    /// Vector shrinking drops to the minimal failing length with minimal
    /// elements.
    #[test]
    fn shrink_minimizes_vectors() {
        let cfg = Config {
            cases: 100,
            seed: 9,
            max_shrink_steps: 4096,
        };
        // Fails whenever the vector has at least 3 elements.
        let fail = check_outcome(
            "vec_len",
            &cfg,
            &vec_of(usize_range(0, 1000), 0, 10),
            |v: &Vec<usize>| {
                if v.len() >= 3 {
                    Err("len >= 3".into())
                } else {
                    Ok(())
                }
            },
        )
        .expect_err("property must fail");
        assert_eq!(fail.minimal.len(), 3, "minimal failing length is 3");
        assert!(
            fail.minimal.iter().all(|x| *x == 0),
            "elements should shrink to range minimum, got {:?}",
            fail.minimal
        );
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2A"), Some(42));
        assert_eq!(parse_seed("0x5EED_0001"), Some(0x5EED_0001));
        assert_eq!(parse_seed("1_000"), Some(1000));
        assert_eq!(parse_seed("nope"), None);
    }

    // The macro form, exercised in-crate.
    crate::prop! {
        #[cases(32)]
        fn macro_addition_commutes(a in u64_range(0, 1000), b in u64_range(0, 1000)) {
            crate::prop_assert_eq!(a + b, b + a);
        }

        fn macro_single_binder(v in u64_range(5, 50)) {
            crate::prop_assert!((5..50).contains(&v), "v = {v}");
        }
    }
}
