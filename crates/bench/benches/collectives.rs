//! Ablation ◆ (DESIGN.md §4.2): stepwise vs coalesced vs hierarchical
//! collective expansion — DAG size and simulated execution cost.

use zerosim_collectives::{
    emit_collective_coalesced, emit_collective_hierarchical, emit_collective_stepwise,
    CollectiveKind, CommGroup,
};
use zerosim_hw::{Cluster, ClusterSpec};
use zerosim_simkit::{DagBuilder, DagEngine, SimTime};
use zerosim_testkit::bench::{Bench, BenchmarkId};

fn bench_emission(c: &mut Bench) {
    let mut group = c.benchmark_group("collectives");
    for (name, bytes) in [("64MB", 64e6), ("1GB", 1e9)] {
        group.bench_with_input(
            BenchmarkId::new("stepwise_intra", name),
            &bytes,
            |b, &bytes| {
                b.iter(|| {
                    let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
                    let g = CommGroup::new(cluster.node_gpus(0));
                    let mut dag = DagBuilder::new();
                    emit_collective_stepwise(
                        &mut dag,
                        &cluster,
                        &g,
                        CollectiveKind::AllReduce,
                        bytes,
                        &[],
                        f64::INFINITY,
                    );
                    let mut eng = DagEngine::new(cluster.resource_slots());
                    eng.run(cluster.net_mut(), &dag.build(), SimTime::ZERO, None)
                        .unwrap()
                        .makespan()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("coalesced_intra", name),
            &bytes,
            |b, &bytes| {
                b.iter(|| {
                    let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
                    let g = CommGroup::new(cluster.node_gpus(0));
                    let mut dag = DagBuilder::new();
                    emit_collective_coalesced(
                        &mut dag,
                        &cluster,
                        &g,
                        CollectiveKind::AllReduce,
                        bytes,
                        &[],
                        f64::INFINITY,
                    );
                    let mut eng = DagEngine::new(cluster.resource_slots());
                    eng.run(cluster.net_mut(), &dag.build(), SimTime::ZERO, None)
                        .unwrap()
                        .makespan()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hierarchical_inter", name),
            &bytes,
            |b, &bytes| {
                b.iter(|| {
                    let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
                    let g = CommGroup::world(&cluster);
                    let mut dag = DagBuilder::new();
                    emit_collective_hierarchical(
                        &mut dag,
                        &cluster,
                        &g,
                        CollectiveKind::AllReduce,
                        bytes,
                        &[],
                        f64::INFINITY,
                    );
                    let mut eng = DagEngine::new(cluster.resource_slots());
                    eng.run(cluster.net_mut(), &dag.build(), SimTime::ZERO, None)
                        .unwrap()
                        .makespan()
                });
            },
        );
    }
    group.finish();
}

zerosim_testkit::bench_main!(bench_emission);
