//! Solver refactor scorecard (DESIGN.md §9): full vs. incremental
//! max-min solve cost on the dual-node ZeRO-3 11.4 B configuration, and
//! parallel-sweep speedup on the ext11 fault-matrix sweep.
//!
//! Emits `BENCH_solver.json` at the repository root with:
//!
//! * `solver`: wall-clock per mode, [`SolverStats`] work counters, the
//!   links-touched-per-solve reduction, and a digest-equality check —
//!   the refactor must change *cost only*, never results.
//! * `sweep`: ext11 rendered at 1 and 8 workers, wall-clock speedup,
//!   byte-identity of the two renderings, and the machine's core count
//!   (speedup is honest, not normalized: on a 1-core box it hovers
//!   near 1×, while the links-touched reduction is hardware-invariant).
//!
//! Run with `cargo bench -p zerosim-bench --bench solver_incremental`;
//! `--quick` (or `ZEROSIM_BENCH_QUICK=1`) drops to single-iteration
//! timing for CI smoke.

use std::time::Instant;

use zerosim_core::{RunConfig, TrainingReport, TrainingSim};
use zerosim_hw::ClusterSpec;
use zerosim_model::GptConfig;
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};
use zerosim_testkit::json::Json;

/// One characterization run of dual-node ZeRO-3 at 11.4 B parameters.
///
/// `full_solve` selects the pre-refactor cost profile (global re-solve on
/// every perturbation). Shadow verification is disabled in both modes so
/// the timing compares the solvers themselves, not the cross-check.
fn zero3_11b_run(full_solve: bool) -> TrainingReport {
    let mut sim = TrainingSim::new(ClusterSpec::default()).expect("default spec valid");
    sim.cluster_mut().net_mut().set_shadow_verify(false);
    sim.cluster_mut().net_mut().set_full_solve(full_solve);
    let strategy = Strategy::Zero {
        stage: ZeroStage::Three,
    };
    let model = GptConfig::paper_model_with_params(11.4);
    let run = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    sim.run(&strategy, &model, &TrainOptions::dual_node(), &run)
        .expect("dual-node ZeRO-3 11.4 B runs")
}

/// Times `f` over `iters` runs, returning (best wall seconds, last value).
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(value);
    }
    (best, last.expect("at least one iteration"))
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("ZEROSIM_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let solver_iters = if quick { 1 } else { 3 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Part 1: full vs. incremental solve cost, identical results.
    let (full_s, full) = time_best(solver_iters, || zero3_11b_run(true));
    let (inc_s, inc) = time_best(solver_iters, || zero3_11b_run(false));
    assert_eq!(
        full.digest(),
        inc.digest(),
        "full and incremental solves must agree bit-for-bit"
    );
    let reduction = full.solver.mean_links_per_solve() / inc.solver.mean_links_per_solve();
    println!("solver: dual-node ZeRO-3 11.4 B (quick run, shadow off)");
    println!(
        "  full        {:>8.3} s  {:>9.1} links/solve  ({} solves)",
        full_s,
        full.solver.mean_links_per_solve(),
        full.solver.solves
    );
    println!(
        "  incremental {:>8.3} s  {:>9.1} links/solve  ({} solves, {} full)",
        inc_s,
        inc.solver.mean_links_per_solve(),
        inc.solver.solves,
        inc.solver.full_solves
    );
    println!("  links-touched-per-solve reduction: {reduction:.1}x");

    // Part 2: ext11 fault-matrix sweep at 1 vs. 8 workers, identical bytes.
    let sweep_iters = if quick { 1 } else { 2 };
    let (serial_s, serial_out) = time_best(sweep_iters, || zerosim_bench::render_with("ext11", 1));
    let (wide_s, wide_out) = time_best(sweep_iters, || zerosim_bench::render_with("ext11", 8));
    assert_eq!(
        serial_out, wide_out,
        "ext11 must render byte-identically at any sweep width"
    );
    let speedup = serial_s / wide_s;
    println!("sweep: ext11 fault matrix, {cores} core(s)");
    println!("  1 worker  {serial_s:>8.3} s");
    println!("  8 workers {wide_s:>8.3} s  ({speedup:.2}x)");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("solver_incremental".into())),
        ("quick".into(), Json::Bool(quick)),
        ("cores".into(), num(cores as f64)),
        (
            "solver".into(),
            Json::Obj(vec![
                (
                    "config".into(),
                    Json::Str("dual-node ZeRO-3 11.4B quick".into()),
                ),
                ("full_wall_s".into(), num(full_s)),
                ("incremental_wall_s".into(), num(inc_s)),
                ("wall_speedup".into(), num(full_s / inc_s)),
                ("full_solves".into(), num(full.solver.solves as f64)),
                ("incremental_solves".into(), num(inc.solver.solves as f64)),
                (
                    "full_links_per_solve".into(),
                    num(full.solver.mean_links_per_solve()),
                ),
                (
                    "incremental_links_per_solve".into(),
                    num(inc.solver.mean_links_per_solve()),
                ),
                ("links_per_solve_reduction".into(), num(reduction)),
                ("digests_equal".into(), Json::Bool(true)),
            ]),
        ),
        (
            "sweep".into(),
            Json::Obj(vec![
                ("artifact".into(), Json::Str("ext11".into())),
                ("serial_wall_s".into(), num(serial_s)),
                ("workers8_wall_s".into(), num(wide_s)),
                ("speedup".into(), num(speedup)),
                ("outputs_identical".into(), Json::Bool(true)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_solver.json");
    println!("wrote BENCH_solver.json");

    assert!(
        reduction >= 5.0,
        "links-touched-per-solve reduction {reduction:.1}x is below the 5x floor"
    );
}
