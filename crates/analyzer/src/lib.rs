//! `zerosim-analyzer` — `planlint`: static analysis over the three
//! artifact layers the simulator produces.
//!
//! Every registry strategy compiles to a typed [`IterPlan`] IR, lowers
//! to a [`zerosim_simkit::Dag`], and may carry a
//! [`zerosim_simkit::FaultSchedule`]. That makes the paper's headline
//! properties — which interconnect binds each ZeRO stage, when a model
//! stops fitting — *statically decidable* before a single simulated
//! flow runs. This crate owns that oracle: a Clippy-style diagnostics
//! framework (stable `ZLxxx` codes, allow/warn/deny levels, text and
//! JSON renderers) plus nine passes registered in a [`PassManager`]:
//!
//! | code  | lint                   | layer          |
//! |-------|------------------------|----------------|
//! | ZL001 | memory-residency       | plan + memory  |
//! | ZL002 | byte-conservation      | plan           |
//! | ZL003 | phase-ordering         | plan           |
//! | ZL004 | bandwidth-feasibility  | plan + cluster |
//! | ZL005 | dead-ops               | lowered DAG    |
//! | ZL006 | dag-cycle              | DAG / graph    |
//! | ZL007 | fault-schedule         | fault schedule |
//! | ZL008 | codec-legality         | plan           |
//! | ZL009 | step-time-bound        | DAG + calib    |
//!
//! ```
//! use zerosim_analyzer::{analyze_strategy, LintConfig};
//! use zerosim_hw::{Cluster, ClusterSpec};
//! use zerosim_model::GptConfig;
//! use zerosim_strategies::{Calibration, StrategyRegistry, TrainOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = Cluster::new(ClusterSpec::default().with_nodes(1))?;
//! let registry = StrategyRegistry::paper();
//! let strategy = registry.get("ZeRO-3").expect("paper registry has ZeRO-3");
//! let report = analyze_strategy(
//!     &cluster,
//!     strategy,
//!     &GptConfig::paper_model_with_params(1.4),
//!     &TrainOptions::single_node(),
//!     &Calibration::default(),
//!     LintConfig::new(),
//! )?;
//! assert!(report.is_clean(), "{}", report.render_text());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod diag;
mod graph;
mod pass;
mod passes;

pub use diag::{Diagnostic, LintCode, LintConfig, LintLevel, Severity, Site};
pub use graph::{Ancestors, GraphView};
pub use pass::{
    AnalysisReport, Artifacts, BoundKind, LinkVerdict, MemoryVerdict, Pass, PassManager, Sink,
    StepTimeBound,
};
pub use passes::{
    BandwidthFeasibilityPass, ByteConservationPass, CodecLegalityPass, DagCyclePass, DeadOpsPass,
    FaultSchedulePass, MemoryResidencyPass, PhaseOrderingPass, StepTimeBoundPass,
};

use zerosim_hw::Cluster;
use zerosim_model::GptConfig;
use zerosim_strategies::{lower, Calibration, IterCtx, StrategyError, StrategyPlan, TrainOptions};

/// Plans, lowers, and lints one strategy end to end: memory plan +
/// iteration plan + lowered DAG through every default pass.
///
/// This is the `planlint` entry point for registry strategies; callers
/// holding raw artifacts (a bare schedule, an untrusted graph) build an
/// [`Artifacts`] and run a [`PassManager`] directly.
///
/// # Errors
/// Returns the [`StrategyError`] if the strategy itself cannot plan or
/// lower on this cluster — that is an infrastructure failure, not a lint
/// finding.
pub fn analyze_strategy(
    cluster: &Cluster,
    strategy: &dyn StrategyPlan,
    model: &GptConfig,
    opts: &TrainOptions,
    calib: &Calibration,
    config: LintConfig,
) -> Result<AnalysisReport, StrategyError> {
    let ctx = IterCtx {
        cluster,
        model,
        opts,
        calib,
    };
    let memory = strategy.plan_memory(&ctx)?;
    let plan = strategy.plan_iteration(&ctx)?;
    let lowered = lower(&plan, cluster, calib)?;
    let pm = PassManager::with_default_passes(config);
    let art = Artifacts::new(cluster)
        .with_plan(&plan)
        .with_memory(&memory)
        .with_dag(lowered.dag())
        .with_calibration(calib);
    Ok(pm.run(&art))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;
    use zerosim_strategies::StrategyRegistry;

    #[test]
    fn analyze_strategy_runs_the_full_stack() {
        let cluster = Cluster::new(ClusterSpec::default().with_nodes(1)).unwrap();
        let registry = StrategyRegistry::paper();
        let strategy = registry.get("PyTorch DDP").unwrap();
        let r = analyze_strategy(
            &cluster,
            strategy,
            &GptConfig::paper_model_with_params(1.4),
            &TrainOptions::single_node(),
            &Calibration::default(),
            LintConfig::new(),
        )
        .unwrap();
        assert!(r.is_clean(), "{}", r.render_text());
        assert!(r.memory.is_some(), "ZL001 ran");
        assert!(!r.links.is_empty(), "ZL004 classified links");
    }
}
