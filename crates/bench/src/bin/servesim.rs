//! `servesim` — serving characterization: TTFT/TPOT percentiles under
//! continuous batching (the CLI front end of [`zerosim_core::serve`]).
//!
//! Usage:
//!
//! ```text
//! servesim [--strategy dense|nvme] [--model B] [--nodes N] [--batch N]
//!          [--requests N] [--arrivals open:RPS|closed:C]
//!          [--prompt LO,HI] [--output LO,HI] [--seed S]
//!          [--workers N] [--json] [--bench PATH]
//! ```
//!
//! * `--strategy` — `dense` (weights resident, TP over all GPUs) or
//!   `nvme` (ZeRO-Inference-style weight streaming from a 2-drive
//!   volume on node 0).
//! * `--model B` — paper-shaped model of `B` billion parameters.
//! * `--nodes N` — nodes the deployment spans (TP widens accordingly).
//! * `--batch N` — continuous-batching slot count.
//! * `--requests N`, `--arrivals`, `--prompt`, `--output`, `--seed` —
//!   the synthetic trace (deterministic per seed).
//! * `--workers N` — fan-out for the `--bench` scorecard sweeps; results
//!   are byte-identical at any width (only wall-clock changes).
//! * `--json` — machine-readable report instead of text.
//! * `--bench PATH` — instead of the single run, write the serving
//!   scorecard: the three golden ext14 deployments plus the decode
//!   regime sweep, with width-invariant digests and the sanity verdict
//!   `verify.sh` gates on.
//!
//! Exit status: 0 on success, 1 when the run fails, 2 on usage errors.

use std::time::Instant;

use zerosim_bench::experiments::serving::{
    golden_runs, golden_trace, regime_sweep, RegimePoint, SERVE_SEED,
};
use zerosim_core::{ArrivalProcess, ServeRun, ServeSpec, TraceConfig};
use zerosim_hw::{ClusterSpec, NvmeId, VolumeId};
use zerosim_model::GptConfig;
use zerosim_strategies::{InfinityPlacement, ServingStrategy, TrainOptions};
use zerosim_testkit::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: servesim [--strategy dense|nvme] [--model B] [--nodes N] [--batch N] \
         [--requests N] [--arrivals open:RPS|closed:C] [--prompt LO,HI] [--output LO,HI] \
         [--seed S] [--workers N] [--json] [--bench PATH]"
    );
    std::process::exit(2);
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs an argument");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn parse_or_exit<T: std::str::FromStr>(raw: Option<String>, flag: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match raw {
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{flag}: {e}");
                std::process::exit(2);
            }
        },
        None => default,
    }
}

fn parse_range(raw: Option<String>, flag: &str, default: (usize, usize)) -> (usize, usize) {
    let Some(raw) = raw else { return default };
    let parts: Vec<&str> = raw.split(',').collect();
    let parse = |s: &str| -> usize {
        s.trim().parse().unwrap_or_else(|e| {
            eprintln!("{flag}: {e}");
            std::process::exit(2);
        })
    };
    match parts.as_slice() {
        [one] => {
            let v = parse(one);
            (v, v)
        }
        [lo, hi] => (parse(lo), parse(hi)),
        _ => {
            eprintln!("{flag}: expected LO,HI");
            std::process::exit(2);
        }
    }
}

fn parse_arrivals(raw: Option<String>) -> ArrivalProcess {
    let Some(raw) = raw else {
        return ArrivalProcess::Closed { concurrency: 8 };
    };
    let bad = || -> ! {
        eprintln!("--arrivals: expected open:RPS or closed:C, got {raw:?}");
        std::process::exit(2);
    };
    if let Some(rate) = raw.strip_prefix("open:") {
        match rate.parse() {
            Ok(rate_rps) if rate_rps > 0.0 => ArrivalProcess::Open { rate_rps },
            _ => bad(),
        }
    } else if let Some(c) = raw.strip_prefix("closed:") {
        match c.parse() {
            Ok(concurrency) if concurrency > 0 => ArrivalProcess::Closed { concurrency },
            _ => bad(),
        }
    } else {
        bad()
    }
}

fn run_json(run: &ServeRun) -> Json {
    let r = &run.report;
    Json::Obj(vec![
        ("label".into(), Json::Str(run.label.clone())),
        ("strategy".into(), Json::Str(r.strategy.into())),
        ("nodes".into(), Json::Num(r.nodes as f64)),
        ("requests".into(), Json::Num(r.requests as f64)),
        (
            "tokens_generated".into(),
            Json::Num(r.tokens_generated as f64),
        ),
        ("ttft_p50_ms".into(), Json::Num(r.ttft_p50.as_secs() * 1e3)),
        ("ttft_p99_ms".into(), Json::Num(r.ttft_p99.as_secs() * 1e3)),
        ("tpot_p50_ms".into(), Json::Num(r.tpot_p50.as_secs() * 1e3)),
        ("tpot_p99_ms".into(), Json::Num(r.tpot_p99.as_secs() * 1e3)),
        ("tokens_per_s".into(), Json::Num(r.tokens_per_s())),
        ("kv_peak_gb".into(), Json::Num(r.kv_peak_bytes / 1e9)),
        ("prefills".into(), Json::Num(r.prefills as f64)),
        ("decode_steps".into(), Json::Num(r.decode_steps as f64)),
        ("plan_lowerings".into(), Json::Num(r.plan_lowerings as f64)),
        ("digest".into(), Json::Str(format!("{:016x}", run.digest))),
    ])
}

fn regime_json(p: &RegimePoint) -> Json {
    Json::Obj(vec![
        ("nodes".into(), Json::Num(p.nodes as f64)),
        ("batch".into(), Json::Num(p.batch as f64)),
        ("tpot_ms".into(), Json::Num(p.tpot_s * 1e3)),
        ("overhead_share".into(), Json::Num(p.overhead_share)),
        ("wire_share".into(), Json::Num(p.wire_share)),
        ("bound_by".into(), Json::Str(p.verdict().into())),
    ])
}

/// The `--bench` scorecard: golden deployments + regime sweep, combined
/// digest, and the sanity verdict `verify.sh` greps for.
fn bench_scorecard(workers: usize) -> Json {
    let t0 = Instant::now();
    let runs = golden_runs(workers);
    let points = regime_sweep(workers);
    let mut serve_digest = 0x5345_5256u64; // "SERV"
    for run in &runs {
        serve_digest = serve_digest.rotate_left(17) ^ run.digest;
    }
    let trace = golden_trace();
    // Sanity: every request completes, percentiles are ordered, the plan
    // cache hits, dense first tokens cost more than dense decode tokens
    // (prefill pays a whole prompt; NVMe streaming is exempt — there
    // *every* decode step re-reads the weights prefill amortizes over the
    // batch), and streaming weights from NVMe costs first-token latency
    // over keeping them resident.
    let sane = runs.iter().all(|run| {
        let r = &run.report;
        r.requests == trace.requests
            && r.ttft_p99 >= r.ttft_p50
            && r.tpot_p99 >= r.tpot_p50
            && r.decode_steps > r.plan_lowerings
    }) && runs[..2]
        .iter()
        .all(|run| run.report.ttft_p50 > run.report.tpot_p50)
        && runs[2].report.ttft_p50 > runs[0].report.ttft_p50
        && runs[2].report.tpot_p50 > runs[0].report.tpot_p50;
    let nvme_ttft_ratio =
        runs[2].report.ttft_p50.as_secs() / runs[0].report.ttft_p50.as_secs().max(1e-12);
    Json::Obj(vec![
        ("seed".into(), Json::Num(SERVE_SEED as f64)),
        ("requests".into(), Json::Num(trace.requests as f64)),
        (
            "deployments".into(),
            Json::Arr(runs.iter().map(run_json).collect()),
        ),
        (
            "regime".into(),
            Json::Arr(points.iter().map(regime_json).collect()),
        ),
        ("nvme_ttft_ratio".into(), Json::Num(nvme_ttft_ratio)),
        ("sane".into(), Json::Bool(sane)),
        (
            "serve_digest".into(),
            Json::Str(format!("{serve_digest:016x}")),
        ),
        ("wall_secs".into(), Json::Num(t0.elapsed().as_secs_f64())),
    ])
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut json = false;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        json = true;
    }
    let strategy_name = take_value(&mut args, "--strategy").unwrap_or_else(|| "dense".into());
    let billions: f64 = parse_or_exit(take_value(&mut args, "--model"), "--model", 1.4);
    let nodes: usize = parse_or_exit(take_value(&mut args, "--nodes"), "--nodes", 1);
    let batch: usize = parse_or_exit(take_value(&mut args, "--batch"), "--batch", 8);
    let requests: usize = parse_or_exit(take_value(&mut args, "--requests"), "--requests", 24);
    let arrivals = parse_arrivals(take_value(&mut args, "--arrivals"));
    let prompt = parse_range(take_value(&mut args, "--prompt"), "--prompt", (128, 512));
    let output = parse_range(take_value(&mut args, "--output"), "--output", (16, 48));
    let seed: u64 = parse_or_exit(take_value(&mut args, "--seed"), "--seed", SERVE_SEED);
    let workers: usize = parse_or_exit(take_value(&mut args, "--workers"), "--workers", 1);
    let bench_path = take_value(&mut args, "--bench");
    if !args.is_empty() {
        eprintln!("unexpected arguments: {args:?}");
        usage();
    }

    if let Some(path) = bench_path {
        let scorecard = bench_scorecard(workers);
        std::fs::write(&path, scorecard.render()).expect("write bench scorecard");
        eprintln!("[scorecard written to {path}]");
        return;
    }

    if !(billions > 0.0 && billions.is_finite()) {
        eprintln!("--model: expected a positive size in billions");
        std::process::exit(2);
    }
    let model = GptConfig::paper_model_with_params(billions);
    let trace = TraceConfig {
        requests,
        arrivals,
        prompt_tokens: prompt,
        output_tokens: output,
        seed,
    };
    let label = format!("{strategy_name} @ {nodes} node(s)");
    let mut spec = match strategy_name.as_str() {
        "dense" => ServeSpec::new(
            label,
            ServingStrategy::Dense,
            model,
            TrainOptions::for_nodes(nodes),
            trace,
        ),
        "nvme" => {
            let d = |drive| NvmeId { node: 0, drive };
            ServeSpec::new(
                label,
                ServingStrategy::NvmeStreamed {
                    placement: InfinityPlacement::new(vec![VolumeId(0)]),
                },
                model,
                TrainOptions::for_nodes(nodes),
                trace,
            )
            .with_volume(vec![d(0), d(1)])
        }
        other => {
            eprintln!("unknown strategy {other:?} (expected dense or nvme)");
            std::process::exit(2);
        }
    }
    .with_cluster(ClusterSpec::default().with_nodes(nodes))
    .with_max_batch(batch);
    spec.opts.jitter_seed = seed;

    let t0 = Instant::now();
    let run = match spec.execute() {
        Ok(run) => run,
        Err(e) => {
            eprintln!("servesim: {e}");
            std::process::exit(1);
        }
    };
    let wall_secs = t0.elapsed().as_secs_f64();
    if json {
        println!("{}", run_json(&run).render());
    } else {
        let r = &run.report;
        println!(
            "servesim: {} — {} on {} node(s), batch {batch}, seed {seed}",
            run.label, r.strategy, r.nodes
        );
        println!(
            "  requests {}  tokens {}  wall {:.2}s  throughput {:.0} tok/s",
            r.requests,
            r.tokens_generated,
            r.wall.as_secs(),
            r.tokens_per_s()
        );
        println!(
            "  TTFT p50/p99 {:.1}/{:.1} ms   TPOT p50/p99 {:.1}/{:.1} ms",
            r.ttft_p50.as_secs() * 1e3,
            r.ttft_p99.as_secs() * 1e3,
            r.tpot_p50.as_secs() * 1e3,
            r.tpot_p99.as_secs() * 1e3
        );
        println!(
            "  prefills {}  decode steps {}  plans lowered {}  KV peak {:.2} GB",
            r.prefills,
            r.decode_steps,
            r.plan_lowerings,
            r.kv_peak_bytes / 1e9
        );
        eprintln!("[run completed in {wall_secs:.2}s]");
    }
}
