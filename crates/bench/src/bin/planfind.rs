//! `planfind` — auto-parallelism placement search over a parameterized
//! topology (the CLI front end of [`zerosim_core::search_plans`]).
//!
//! Usage:
//!
//! ```text
//! planfind [--topology SPEC] [--model B | --model wide:B]
//!          [--workers N] [--top N] [--json] [--bench PATH]
//! ```
//!
//! * `--topology SPEC` — the cluster shape to search against:
//!   `paper` (default, the two-node testbed), `flat:<nodes>`,
//!   `fat-tree:<racks>x<nodes_per_rack>:<oversub>`, or
//!   `pods:<pods>x<islands>x<gpus>:<pod_oversub>:<spine_oversub>`.
//! * `--model B` — paper-shaped model of `B` billion parameters
//!   (depth-scaled, h = 2048); `--model wide:B` uses the fixed-depth
//!   wide shape for cluster-scale models.
//! * `--workers N` — simulation fan-out; results are byte-identical at
//!   any width (only wall-clock changes).
//! * `--top N` — ranked plans to print (default 5).
//! * `--json` — machine-readable report instead of text.
//! * `--bench PATH` — also write a `BENCH_planfind.json` scorecard
//!   (candidate counts, prune fraction, digest, wall time) to `PATH`.
//!
//! Exit status: 0 on success (even when every candidate prunes), 1 when
//! the topology cannot be built, 2 on usage errors.

use std::time::Instant;

use zerosim_core::{search_plans, CandidateOutcome, SearchConfig, SearchReport};
use zerosim_hw::TopologySpec;
use zerosim_model::GptConfig;
use zerosim_testkit::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: planfind [--topology SPEC] [--model B|wide:B] [--workers N] \
         [--top N] [--json] [--bench PATH]"
    );
    eprintln!("topologies: paper | flat:<nodes> | fat-tree:<racks>x<npr>:<over> |");
    eprintln!("            pods:<pods>x<islands>x<gpus>:<pod_over>:<spine_over>");
    std::process::exit(2);
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs an argument");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn parse_model(raw: &str) -> GptConfig {
    let (wide, digits) = match raw.strip_prefix("wide:") {
        Some(rest) => (true, rest),
        None => (false, raw),
    };
    let billions: f64 = match digits.parse() {
        Ok(b) if b > 0.0 => b,
        _ => {
            eprintln!("--model: expected a positive size in billions, got {raw:?}");
            std::process::exit(2);
        }
    };
    if wide {
        GptConfig::wide_model_with_params(billions)
    } else {
        GptConfig::paper_model_with_params(billions)
    }
}

fn report_json(report: &SearchReport, workers: usize, wall_secs: f64) -> Json {
    let candidates: Vec<Json> = report
        .candidates
        .iter()
        .map(|c| {
            let (status, detail) = match &c.outcome {
                CandidateOutcome::Pruned { reason } => ("pruned", Json::Str(reason.clone())),
                CandidateOutcome::Simulated {
                    throughput_flops, ..
                } => ("simulated", Json::Num(throughput_flops / 1e12)),
                CandidateOutcome::Failed { error } => ("failed", Json::Str(error.clone())),
            };
            Json::Obj(vec![
                ("strategy".into(), Json::Str(c.strategy_name.clone())),
                ("placement".into(), Json::Str(c.placement())),
                ("spans".into(), Json::Str(c.spans.clone())),
                ("status".into(), Json::Str(status.into())),
                ("detail".into(), detail),
            ])
        })
        .collect();
    let ranking: Vec<Json> = report
        .ranking()
        .into_iter()
        .map(|c| Json::Str(format!("{} {}", c.strategy_name, c.placement())))
        .collect();
    Json::Obj(vec![
        ("topology".into(), Json::Str(report.topology.clone())),
        ("total_gpus".into(), Json::Num(report.total_gpus as f64)),
        (
            "model_billions".into(),
            Json::Num(report.model_params / 1e9),
        ),
        ("enumerated".into(), Json::Num(report.enumerated() as f64)),
        ("pruned".into(), Json::Num(report.pruned() as f64)),
        ("simulated".into(), Json::Num(report.simulated() as f64)),
        ("failed".into(), Json::Num(report.failed() as f64)),
        ("prune_fraction".into(), Json::Num(report.prune_fraction())),
        ("workers".into(), Json::Num(workers as f64)),
        ("wall_secs".into(), Json::Num(wall_secs)),
        (
            "digest".into(),
            Json::Str(format!("{:016x}", report.digest())),
        ),
        ("ranking".into(), Json::Arr(ranking)),
        ("candidates".into(), Json::Arr(candidates)),
    ])
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut json = false;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        json = true;
    }
    let topology = match take_value(&mut args, "--topology") {
        Some(raw) => match TopologySpec::parse(&raw) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("--topology {raw}: {e}");
                std::process::exit(2);
            }
        },
        None => TopologySpec::default(),
    };
    let model = parse_model(&take_value(&mut args, "--model").unwrap_or_else(|| "1.4".into()));
    let workers: usize = match take_value(&mut args, "--workers") {
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("--workers: {e}");
                std::process::exit(2);
            }
        },
        None => 1,
    };
    let top: usize = match take_value(&mut args, "--top") {
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("--top: {e}");
                std::process::exit(2);
            }
        },
        None => 5,
    };
    let bench_path = take_value(&mut args, "--bench");
    if !args.is_empty() {
        eprintln!("unexpected arguments: {args:?}");
        usage();
    }

    let cfg = SearchConfig::new(topology, model).with_workers(workers);
    let t0 = Instant::now();
    let report = match search_plans(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("planfind: {e}");
            std::process::exit(1);
        }
    };
    let wall_secs = t0.elapsed().as_secs_f64();

    if json {
        println!("{}", report_json(&report, workers, wall_secs).render());
    } else {
        print!("{}", report.render_text(top));
        eprintln!("[search completed in {wall_secs:.2}s at {workers} worker(s)]");
    }
    if let Some(path) = bench_path {
        std::fs::write(&path, report_json(&report, workers, wall_secs).render())
            .expect("write bench scorecard");
        eprintln!("[scorecard written to {path}]");
    }
}
