//! Resilience study: the five paper strategies under a canonical fault
//! matrix — degraded RoCE, a straggling GPU, an NVMe stall, and a node
//! loss recovered from checkpoints — answering "which strategy degrades
//! most gracefully when the cluster stops being healthy?".
//!
//! Run with: `cargo run --release --example resilience`

use zerosim_bench::experiments::resilience::{run_cell, MATRIX_BILLIONS, MATRIX_SEED};
use zerosim_core::FaultScenario;
use zerosim_hw::GpuId;
use zerosim_model::GptConfig;
use zerosim_strategies::Strategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The full strategy × fault matrix (also available as `repro ext11`).
    println!(
        "{}",
        zerosim_bench::experiments::resilience::goodput_table()
    );

    // Determinism: the same seed and schedule reproduce the report
    // byte-for-byte — fault injection composes with the stamped-DAG
    // cache instead of breaking it.
    let model = GptConfig::paper_model_with_params(MATRIX_BILLIONS);
    let scenario = FaultScenario::Straggler {
        gpu: GpuId { node: 0, gpu: 1 },
        factor: 0.7,
        at_s: 0.0,
    };
    let a = run_cell(&Strategy::Ddp, &model, &scenario);
    let b = run_cell(&Strategy::Ddp, &model, &scenario);
    assert_eq!(a.digest(), b.digest());
    println!(
        "\ndeterminism: two seed-{MATRIX_SEED} straggler runs -> digest {:#018x} twice",
        a.digest()
    );
    let m = a.resilience.expect("resilient runs carry metrics");
    println!(
        "straggler cell: {:.1} TFLOP/s goodput, p50 {:.0} ms / p99 {:.0} ms, {} fault event(s)",
        m.goodput_tflops(),
        m.iter_p50.as_millis(),
        m.iter_p99.as_millis(),
        m.faults_applied
    );
    Ok(())
}
