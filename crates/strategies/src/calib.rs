//! Calibration constants for the performance model.
//!
//! Everything in this struct is a knob the simulation cannot derive from
//! first principles — GPU kernel efficiency, framework overheads, CPU
//! optimizer throughput, activation footprints. Each constant is pinned by
//! a specific observation in the paper; EXPERIMENTS.md records the
//! paper-vs-simulated numbers the final values produce.

/// Tunable constants of the training performance/memory model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Peak FP16 Tensor-Core throughput per GPU (A100: 312 TFLOP/s).
    pub gpu_peak_flops: f64,
    /// Asymptotic GEMM efficiency for large per-kernel work.
    /// Pinned by: ZeRO-2 at 5.2 B reaching 524 TFLOP/s aggregate (Fig. 7-a).
    pub gemm_eff_max: f64,
    /// Per-kernel FLOPs at which efficiency reaches half of
    /// `gemm_eff_max`. Pinned by: Megatron (quarter-size GEMMs) at
    /// 331 TFLOP/s vs DDP's 438 in single-node (Fig. 7-a).
    pub gemm_eff_half_flops: f64,
    /// Fixed per-iteration overhead in seconds (Python step, launcher,
    /// data loader). Pinned by: DDP throughput rising 379 → 438 TFLOP/s
    /// from 0.7 B to 1.4 B (Table V).
    pub iteration_overhead_s: f64,
    /// Per-kernel launch overhead, seconds.
    pub kernel_overhead_s: f64,
    /// Fraction of a layer's forward time spent in element-wise /
    /// transform kernels (Fig. 5 orange/red spans).
    pub elementwise_frac: f64,
    /// GPU Adam throughput, parameters/second (fused FP32 update).
    pub gpu_adam_params_per_s: f64,
    /// CPU Adam throughput per socket, parameters/second (DeepSpeed's
    /// AVX CPU-Adam). Pinned by: ZeRO-2-Offload reaching 191 TFLOP/s at
    /// 11.4 B (Fig. 11-a) and the 1.38 s ZeRO-1-Offload iteration (Fig. 5).
    pub cpu_adam_params_per_s: f64,
    /// Stored activation values per (layer · token · hidden-unit) with
    /// activation checkpointing (DeepSpeed/ZeRO runs).
    pub act_coeff_ckpt: f64,
    /// Same without checkpointing (plain DDP / Megatron runs). Pinned by:
    /// DDP topping out at 1.4 B on a 40 GB A100 (Fig. 6-a).
    pub act_coeff_nockpt: f64,
    /// Fixed per-GPU memory overhead (CUDA context, workspaces), bytes.
    pub gpu_fixed_bytes: f64,
    /// Extra per-GPU buffer bytes for ZeRO-1/2 (all-gather and
    /// reduce buckets).
    pub zero12_buffer_bytes: f64,
    /// Extra per-GPU buffer bytes for ZeRO-3 (live parameters,
    /// prefetch queue).
    pub zero3_buffer_bytes: f64,
    /// Host-side bytes per parameter for CPU offload (FP32 master, m, v,
    /// FP32 gradient staging, double buffers). Pinned by: ZeRO-2-Offload
    /// using 353 GB of CPU memory for the 11.4 B model (Fig. 11-b).
    pub offload_cpu_bytes_per_param: f64,
    /// Host-side bytes per parameter retained when states live on NVMe
    /// (staging + working copies). Pinned by: ZeRO-Infinity optimizer
    /// offload using 317 GB CPU for 11.4 B (Fig. 11-b).
    pub infinity_cpu_bytes_per_param: f64,
    /// NVMe bytes per parameter for optimizer offload (the 12 P states).
    pub infinity_nvme_bytes_per_param: f64,
    /// Baseline host memory per node for the framework + dataset cache,
    /// bytes (paper Sec. IV-D: 18–25 GB).
    pub host_base_bytes: f64,
    /// Fraction of each rank's offloaded host partition that lands on the
    /// *wrong* socket (the paper observes the offload path is not
    /// NUMA-aware; Sec. V-A3).
    pub offload_cross_socket_frac: f64,
    /// Per-flow effective rate of DeepSpeed's partitioned collectives over
    /// RoCE, bytes/second. Pinned by: the dual-node ZeRO RoCE averages of
    /// Table IV (10.5–16.3 GBps node-aggregate) and ZeRO-2's 424 TFLOP/s
    /// (Fig. 7-b). Plain NCCL large-bucket rings (DDP) instead run at
    /// [`Calibration::nccl_internode_cap`].
    pub ds_internode_cap: f64,
    /// Per-flow effective rate of plain NCCL's large-bucket ring
    /// all-reduce over RoCE, bytes/second. Pinned by: DDP's 640 TFLOP/s in
    /// dual-node training (Fig. 7-b) with its 9.28 GBps RoCE average
    /// (Table IV).
    pub nccl_internode_cap: f64,
    /// Per-flow inter-node rate of Megatron's fused tensor-parallel
    /// all-reduces (moderate message sizes; between the two regimes
    /// above). Pinned by: Megatron's 121 TFLOP/s dual-node collapse
    /// (Fig. 7-b).
    pub megatron_internode_cap: f64,
    /// Per-flow inter-node rate of ZeRO-3's per-layer-group parameter
    /// gathers (smaller buckets than ZeRO-1/2's whole-state collectives).
    /// Pinned by: ZeRO-3's 458 TFLOP/s in dual-node training (Fig. 7-b).
    pub zero3_internode_cap: f64,
    /// Framework DRAM traffic per GPU per iteration, bytes (data-loader
    /// copies, logging, host-side bookkeeping). Pinned by: Table IV's
    /// 1.5–3.5 GBps single-node DRAM averages.
    pub host_dram_bytes_per_iter: f64,
    /// Framework PCIe H2D traffic per GPU per iteration, bytes (kernel
    /// arguments, small tensors, gradient norms). Pinned by: Table IV's
    /// 0.6–6 GBps single-node PCIe-GPU averages.
    pub host_pcie_bytes_per_iter: f64,
    /// Half-width of the uniform per-kernel duration jitter (clock
    /// boosting, cache effects, scheduler noise). Gives the sampled
    /// bandwidth counters the avg < p90 < peak spread real hardware shows.
    pub compute_jitter_frac: f64,
    /// Per-layer GPU-side stall from DeepSpeed ZeRO-3's module hooks
    /// (parameter coalescing/partitioning around every gathered layer),
    /// seconds. Pinned by: ZeRO-3's 381 TFLOP/s vs ZeRO-2's 524 in
    /// single-node training (Fig. 7-a).
    pub zero3_hook_s_per_layer: f64,
    /// Fixed per-step overhead of the serving frontend (scheduler,
    /// sampling, detokenization, kernel launch), seconds. Paid by every
    /// prefill and every decode step — far smaller than
    /// `iteration_overhead_s` because there is no optimizer/data-loader
    /// work, but it is the term that makes small-batch decode
    /// protocol-bound rather than wire-bound.
    pub serve_step_overhead_s: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            gpu_peak_flops: 312e12,
            gemm_eff_max: 0.50,
            gemm_eff_half_flops: 8.0e9,
            iteration_overhead_s: 0.050,
            kernel_overhead_s: 3.0e-6,
            elementwise_frac: 0.07,
            gpu_adam_params_per_s: 40e9,
            cpu_adam_params_per_s: 2.5e9,
            act_coeff_ckpt: 0.8,
            act_coeff_nockpt: 30.0,
            gpu_fixed_bytes: 3.5e9,
            zero12_buffer_bytes: 4.5e9,
            zero3_buffer_bytes: 5.5e9,
            offload_cpu_bytes_per_param: 30.0,
            infinity_cpu_bytes_per_param: 27.0,
            infinity_nvme_bytes_per_param: 12.0,
            host_base_bytes: 20e9,
            offload_cross_socket_frac: 0.35,
            ds_internode_cap: 1.3e9,
            nccl_internode_cap: 8.0e9,
            megatron_internode_cap: 6.5e9,
            zero3_internode_cap: 0.85e9,
            host_dram_bytes_per_iter: 0.13e9,
            host_pcie_bytes_per_iter: 0.05e9,
            compute_jitter_frac: 0.06,
            zero3_hook_s_per_layer: 2.5e-3,
            serve_step_overhead_s: 4.0e-3,
        }
    }
}

impl Calibration {
    /// Effective GEMM efficiency for a kernel of `flops` FLOPs
    /// (saturating `work / (work + half)` curve).
    pub fn gemm_efficiency(&self, flops: f64) -> f64 {
        self.gemm_eff_max * flops / (flops + self.gemm_eff_half_flops)
    }

    /// Wall time of a GPU kernel performing `flops` FLOPs.
    pub fn kernel_time_s(&self, flops: f64) -> f64 {
        if flops <= 0.0 {
            return self.kernel_overhead_s;
        }
        self.kernel_overhead_s + flops / (self.gpu_peak_flops * self.gemm_efficiency(flops))
    }

    /// Wall time of a GPU Adam update over `params` parameters.
    pub fn gpu_adam_time_s(&self, params: f64) -> f64 {
        params / self.gpu_adam_params_per_s
    }

    /// Wall time of a CPU (socket) Adam update over `params` parameters.
    pub fn cpu_adam_time_s(&self, params: f64) -> f64 {
        params / self.cpu_adam_params_per_s
    }
}

// JSON codec (in-house serde replacement; see crates/testkit).
zerosim_testkit::impl_json! {
    struct Calibration {
        gpu_peak_flops, gemm_eff_max, gemm_eff_half_flops, iteration_overhead_s,
        kernel_overhead_s, elementwise_frac, gpu_adam_params_per_s,
        cpu_adam_params_per_s, act_coeff_ckpt, act_coeff_nockpt, gpu_fixed_bytes,
        zero12_buffer_bytes, zero3_buffer_bytes, offload_cpu_bytes_per_param,
        infinity_cpu_bytes_per_param, infinity_nvme_bytes_per_param,
        host_base_bytes, offload_cross_socket_frac, ds_internode_cap,
        nccl_internode_cap, megatron_internode_cap, zero3_internode_cap,
        host_dram_bytes_per_iter, host_pcie_bytes_per_iter,
        compute_jitter_frac, zero3_hook_s_per_layer, serve_step_overhead_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_saturates() {
        let c = Calibration::default();
        let small = c.gemm_efficiency(1e9);
        let large = c.gemm_efficiency(1e13);
        assert!(small < large);
        assert!(large < c.gemm_eff_max);
        assert!(large > 0.95 * c.gemm_eff_max);
    }

    #[test]
    fn kernel_time_monotone_in_flops() {
        let c = Calibration::default();
        let t1 = c.kernel_time_s(1e10);
        let t2 = c.kernel_time_s(2e10);
        assert!(t2 > t1);
        assert!(c.kernel_time_s(0.0) == c.kernel_overhead_s);
    }

    #[test]
    fn adam_rates() {
        let c = Calibration::default();
        // GPU Adam is an order of magnitude faster than CPU Adam.
        assert!(c.gpu_adam_time_s(1e9) < c.cpu_adam_time_s(1e9) / 5.0);
    }

    #[test]
    fn ddp_per_gpu_rate_is_near_paper() {
        // At the 1.4 B model, one GPU's per-layer forward GEMM work is
        // ~4.1e11 FLOPs; the resulting sustained rate must land near the
        // ~110 TFLOP/s per GPU that DDP's 438 TFLOP/s aggregate implies.
        let c = Calibration::default();
        let layer_flops = 2.0 * 50.36e6 * 4096.0;
        // A layer issues ~6 GEMM kernels (as the iteration builder models).
        let rate = layer_flops / (6.0 * c.kernel_time_s(layer_flops / 6.0));
        assert!(
            rate > 110e12 && rate < 160e12,
            "per-GPU sustained rate {:.1} TFLOP/s out of band",
            rate / 1e12
        );
    }
}
