//! Deterministic pseudo-random number generation.
//!
//! The generator is xoshiro256** seeded through splitmix64 — the standard
//! pairing recommended by the xoshiro authors. It is:
//!
//! * **deterministic**: the same seed produces the same sequence on every
//!   platform and every run (see the golden-sequence test below);
//! * **splittable**: [`Rng::fork`] derives an independent stream, so
//!   generators can consume randomness without perturbing their caller;
//! * **dependency-free**: no `rand`, no `getrandom`, no OS entropy unless
//!   you explicitly ask for a time-derived seed.
//!
//! This is a *simulation/testing* RNG. It is not cryptographically secure
//! and must never be used for anything security-sensitive.

/// Advances a splitmix64 state and returns the next output.
///
/// Used for seeding and for hashing seeds into independent streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** deterministic random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from an explicit 64-bit seed.
    ///
    /// The 256-bit internal state is expanded from the seed with
    /// splitmix64, so nearby seeds still yield uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start from the all-zero state; splitmix64 of
        // any seed cannot produce four zero outputs, but keep the guard
        // for clarity.
        debug_assert!(s.iter().any(|w| *w != 0));
        Rng { s }
    }

    /// A seed derived from the wall clock, for exploratory runs only.
    ///
    /// Tests should prefer fixed seeds (or `ZEROSIM_PT_SEED`); this
    /// exists so tools can opt into variability explicitly.
    pub fn seed_from_time() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        // Truncating the u128 nanosecond count keeps the low (fastest-
        // moving) bits, which is exactly what a seed wants.
        #[allow(clippy::cast_possible_truncation)]
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut sm = nanos ^ 0xA0761D6478BD642F;
        splitmix64(&mut sm)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`. Returns 0 when `bound == 0`.
    ///
    /// Uses Lemire-style rejection so the distribution is exactly
    /// uniform (no modulo bias).
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let hi = ((x as u128 * bound as u128) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    #[allow(clippy::cast_possible_truncation)] // result < hi, a usize
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or not finite.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        let v = lo + self.next_f64() * (hi - lo);
        // Guard against hi itself appearing through rounding.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent generator without disturbing this stream's
    /// future beyond a single draw.
    pub fn fork(&mut self) -> Rng {
        let mut sm = self.next_u64() ^ 0x6A09_E667_F3BC_C909;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden sequence: the exact first outputs for seed 42. If this test
    /// ever fails, reproducibility of every recorded seed in CI logs and
    /// EXPERIMENTS.md is broken — do not "fix" it by updating the
    /// constants without a migration note.
    #[test]
    fn golden_sequence_seed_42() {
        // Frozen at testkit introduction: the exact first eight outputs
        // for seed 42 on every platform.
        let mut rng = Rng::new(42);
        let got: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x1578_0B2E_0C2E_C716,
                0x6104_D986_6D11_3A7E,
                0xAE17_5332_39E4_99A1,
                0xECB8_AD47_03B3_60A1,
                0xFDE6_DC7F_E2EC_5E64,
                0xC50D_A531_0179_5238,
                0xB821_5485_5A65_DDB2,
                0xD99A_2743_EBE6_0087,
            ],
            "same seed must replay the same golden sequence"
        );
        // Spot-check the splitmix64 expansion against the published
        // reference vector for state 0.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut sm), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn golden_sequence_is_stable_across_builds() {
        // Frozen constants recorded at testkit introduction. These pin
        // the concrete xoshiro256** + splitmix64 implementation.
        let mut rng = Rng::new(0x00D1_5EA5_E00F_CAFE);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                0xF700_6440_A38D_55E2,
                0xD38A_8DFB_E12A_9CC7,
                0x7E0B_8098_F175_A85B,
                0xEDA7_5A15_791A_FF10,
            ]
        );
        // Different seeds diverge immediately.
        let mut other = Rng::new(0x00D1_5EA5_E00F_CAFF);
        assert_ne!(got[0], other.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let u = rng.u64_in(10, 20);
            assert!((10..20).contains(&u));
            let f = rng.f64_in(-3.0, 4.5);
            assert!((-3.0..4.5).contains(&f));
            let s = rng.usize_in(0, 6);
            assert!(s < 6);
        }
    }

    #[test]
    fn u64_below_zero_bound_is_zero() {
        let mut rng = Rng::new(1);
        assert_eq!(rng.u64_below(0), 0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut a = Rng::new(5);
        let mut fork = a.fork();
        let a_next: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let f_next: Vec<u64> = (0..4).map(|_| fork.next_u64()).collect();
        assert_ne!(a_next, f_next);
        // Deterministic: replaying the parent replays the fork.
        let mut b = Rng::new(5);
        let mut fork2 = b.fork();
        assert_eq!(f_next, (0..4).map(|_| fork2.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Rng::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
