//! Bandwidth stress tests (Sec. III-C2/3, Fig. 4): four bidirectional
//! test kernels hammer the inter-node path while every interconnect is
//! sampled.

use std::collections::BTreeMap;

use zerosim_hw::{Cluster, ClusterSpec, GpuId, LinkClass, SocketId};
use zerosim_simkit::{BandwidthRecorder, BandwidthStats, DagBuilder, DagEngine, SimTime, TaskId};

/// Which stress scenario to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StressScenario {
    /// Four CPU kernels (two per socket) exercising CPU-memory RoCE.
    CpuRoce {
        /// Use the neighbouring CPU's NIC.
        cross_socket: bool,
    },
    /// Four GPUDirect kernels (one per GPU) exercising GPU-memory RoCE.
    GpuRoce {
        /// Use the neighbouring CPU's NIC.
        cross_socket: bool,
    },
}

impl StressScenario {
    /// Display name matching Fig. 4's panels.
    pub fn label(&self) -> String {
        match self {
            StressScenario::CpuRoce { cross_socket } => format!(
                "CPU-RoCE ({}-socket)",
                if *cross_socket { "cross" } else { "same" }
            ),
            StressScenario::GpuRoce { cross_socket } => format!(
                "GPU-RoCE ({}-socket)",
                if *cross_socket { "cross" } else { "same" }
            ),
        }
    }
}

/// Result of one stress run.
#[derive(Debug, Clone)]
pub struct StressOutcome {
    /// Scenario that produced this outcome.
    pub scenario: StressScenario,
    /// Average/p90/peak bytes-per-second per interconnect class (node 0).
    pub per_class: BTreeMap<LinkClass, BandwidthStats>,
    /// Attained node-aggregate bidirectional RoCE bandwidth as a fraction
    /// of the theoretical 2 NICs × 50 GBps.
    pub roce_fraction: f64,
}

impl StressOutcome {
    /// Stats of one class (zeros when the class was idle).
    pub fn class(&self, class: LinkClass) -> BandwidthStats {
        self.per_class.get(&class).copied().unwrap_or_default()
    }
}

/// Bytes each kernel pushes per direction.
const KERNEL_BYTES: f64 = 40e9;
/// Transfers the kernel is chopped into (sustains pressure, lets the
/// sampler see a steady pattern).
const KERNEL_CHUNKS: usize = 10;

/// Runs `scenario` on a fresh default (two-node) cluster.
pub fn stress_test(scenario: StressScenario) -> StressOutcome {
    stress_test_on(&ClusterSpec::default(), scenario)
}

/// Runs `scenario` on a cluster built from `spec`.
///
/// # Panics
/// Panics if `spec` has fewer than two nodes.
pub fn stress_test_on(spec: &ClusterSpec, scenario: StressScenario) -> StressOutcome {
    assert!(spec.nodes >= 2, "stress test needs two nodes");
    let mut cluster = Cluster::new(spec.clone()).expect("valid spec");
    let mut dag = DagBuilder::new();

    // Each kernel: a chain of chunk transfers in each direction.
    let emit_chain = |dag: &mut DagBuilder, route: zerosim_hw::Route, track: u32| {
        let mut prev: Option<TaskId> = None;
        for _ in 0..KERNEL_CHUNKS {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            let t = dag.transfer_capped(
                route.links.clone(),
                KERNEL_BYTES / KERNEL_CHUNKS as f64,
                route.latency,
                route.cap,
                "stress",
                track,
                &deps,
            );
            prev = Some(t);
        }
    };

    match scenario {
        StressScenario::CpuRoce { cross_socket } => {
            for socket in 0..ClusterSpec::SOCKETS_PER_NODE {
                let nic = if cross_socket { 1 - socket } else { socket };
                let a = SocketId { node: 0, socket };
                let b = SocketId { node: 1, socket };
                // Two kernels per CPU, each bidirectional.
                for k in 0..2 {
                    let fwd = cluster.route_internode_cpu_via(a, b, nic, nic);
                    let rev = cluster.route_internode_cpu_via(b, a, nic, nic);
                    // Track ids are tiny (sockets x kernels).
                    #[allow(clippy::cast_possible_truncation)]
                    let track = (socket * 2 + k) as u32;
                    emit_chain(&mut dag, fwd, track);
                    emit_chain(&mut dag, rev, track);
                }
            }
        }
        StressScenario::GpuRoce { cross_socket } => {
            for gpu in 0..spec.gpus_per_node {
                let a = GpuId { node: 0, gpu };
                let b = GpuId { node: 1, gpu };
                let socket = cluster.gpu_socket(a).socket;
                let nic = if cross_socket { 1 - socket } else { socket };
                let fwd = cluster.route_internode_gpu(a, b, nic, nic);
                let rev = cluster.route_internode_gpu(b, a, nic, nic);
                // Track ids are tiny (one per GPU).
                #[allow(clippy::cast_possible_truncation)]
                let track = gpu as u32;
                emit_chain(&mut dag, fwd, track);
                emit_chain(&mut dag, rev, track);
            }
        }
    }

    let dag = dag.build();
    let mut rec = BandwidthRecorder::new(SimTime::from_ms(100.0));
    let mut engine = DagEngine::new(cluster.resource_slots());
    engine
        .run(cluster.net_mut(), &dag, SimTime::ZERO, Some(&mut rec))
        .expect("stress DAG cannot deadlock");

    let mut per_class = BTreeMap::new();
    for class in [
        LinkClass::Dram,
        LinkClass::Xgmi,
        LinkClass::PcieGpu,
        LinkClass::PcieNic,
        LinkClass::Roce,
    ] {
        per_class.insert(class, rec.stats(cluster.links(0, class)));
    }
    let theoretical = 2.0 * 2.0 * 25e9; // 2 NICs × 50 GBps bidirectional
    let roce_fraction = per_class[&LinkClass::Roce].avg / theoretical;

    StressOutcome {
        scenario,
        per_class,
        roce_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_socket_cpu_roce_attains_93_percent() {
        let out = stress_test(StressScenario::CpuRoce {
            cross_socket: false,
        });
        assert!(
            (out.roce_fraction - 0.93).abs() < 0.03,
            "attained {:.1}% of theoretical RoCE",
            out.roce_fraction * 100.0
        );
        // DRAM carries the payload on both ends.
        assert!(out.class(LinkClass::Dram).avg > 10e9);
    }

    #[test]
    fn cross_socket_cpu_roce_attains_47_percent() {
        let out = stress_test(StressScenario::CpuRoce { cross_socket: true });
        assert!(
            (out.roce_fraction - 0.47).abs() < 0.04,
            "attained {:.1}%",
            out.roce_fraction * 100.0
        );
        // xGMI must be busy.
        assert!(out.class(LinkClass::Xgmi).avg > 5e9);
    }

    #[test]
    fn same_socket_gpu_roce_attains_52_percent() {
        let out = stress_test(StressScenario::GpuRoce {
            cross_socket: false,
        });
        assert!(
            (out.roce_fraction - 0.52).abs() < 0.04,
            "attained {:.1}%",
            out.roce_fraction * 100.0
        );
        // GPUDirect: no significant DRAM traffic (Sec. III-C3).
        assert!(out.class(LinkClass::Dram).avg < 1e9);
        assert!(out.class(LinkClass::PcieGpu).avg > 5e9);
    }

    #[test]
    fn cross_socket_gpu_roce_attains_42_percent() {
        let out = stress_test(StressScenario::GpuRoce { cross_socket: true });
        assert!(
            (out.roce_fraction - 0.42).abs() < 0.04,
            "attained {:.1}%",
            out.roce_fraction * 100.0
        );
        assert!(out.class(LinkClass::Xgmi).avg > 5e9);
    }

    #[test]
    fn labels() {
        assert_eq!(
            StressScenario::CpuRoce { cross_socket: true }.label(),
            "CPU-RoCE (cross-socket)"
        );
        assert_eq!(
            StressScenario::GpuRoce {
                cross_socket: false
            }
            .label(),
            "GPU-RoCE (same-socket)"
        );
    }
}
