#!/usr/bin/env bash
# Tier-1 verification plus the hermeticity gate.
#
#   1. tier-1:      cargo build --release && cargo test -q
#   2. hermeticity: the same build must succeed with --offline and the
#                   manifests must declare no registry dependencies
#   3. bench smoke: one in-house-harness bench target in --quick mode
#
# The workspace must never require network/registry access; everything
# external was replaced by crates/testkit (see DESIGN.md, "Testing
# strategy").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (release) =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== hermeticity: offline build =="
cargo build --release --offline
cargo test -q --offline --no-run

echo "== hermeticity: manifest scan =="
# No registry dependency may reappear in any manifest. Matches the old
# dependency names anywhere in a Cargo.toml; path-only deps never match.
if grep -rn "proptest\|criterion\|serde\|crossbeam\|parking_lot\|rand\b\|bytes =" \
    crates/*/Cargo.toml Cargo.toml; then
  echo "ERROR: registry dependency found in a manifest (see matches above)" >&2
  exit 1
fi
echo "manifests clean: path dependencies only"

echo "== bench smoke (in-house harness, --quick) =="
cargo bench -p zerosim-bench --bench flow_solver -- --quick

echo "VERIFY OK"
