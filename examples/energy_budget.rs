//! Energy and cost budgeting: "what does a training run actually cost me,
//! in watts and dollars?" — the economics behind the paper's motivation
//! (expensive purpose-built clusters, energy and environmental impact).
//!
//! Run with: `cargo run --release --example energy_budget [billions]`

use zerosim_core::{CostModel, PowerModel, RunConfig, TrainingSim};
use zerosim_hw::ClusterSpec;
use zerosim_model::GptConfig;
use zerosim_report::Table;
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let billions: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(11.2);
    let model = GptConfig::paper_model_with_params(billions);
    let power = PowerModel::default();
    let cost = CostModel::default();
    println!(
        "budget for fine-tuning a {:.1} B model, 100k iterations:\n",
        model.num_params() / 1e9
    );

    let mut t = Table::new(vec![
        "configuration",
        "nodes",
        "wall days",
        "energy MWh",
        "capital k$",
    ]);
    let candidates: Vec<(&str, Strategy, usize)> = vec![
        (
            "Megatron-LM (TP across nodes)",
            Strategy::Megatron { tp: 8, pp: 1 },
            2,
        ),
        (
            "Megatron-LM (PP across nodes)",
            Strategy::Megatron { tp: 4, pp: 2 },
            2,
        ),
        (
            "ZeRO-3",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            "ZeRO-2 CPU offload",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
    ];
    const ITERATIONS: f64 = 100_000.0;
    for (name, strategy, nodes) in candidates {
        let mut sim = TrainingSim::new(ClusterSpec::default())?;
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        let report = sim.run(&strategy, &model, &opts, &cfg)?;
        let energy = power.estimate(&report, 4);
        let capital = cost.estimate(&report, 4, 2);
        let wall_days = report.iter_time.as_secs() * ITERATIONS / 86_400.0;
        let mwh = energy.total_j() * ITERATIONS / 3.6e9;
        t.row(vec![
            name.into(),
            nodes.to_string(),
            format!("{wall_days:.1}"),
            format!("{mwh:.2}"),
            format!("{:.0}", capital.capital_usd / 1000.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The paper's dual-node Megatron configuration is the slowest AND the\n\
         most energy-hungry way to train this model on this hardware."
    );
    Ok(())
}
