//! Regenerates the paper's tables and figures on the simulated cluster.
//!
//! Usage: `repro [--out DIR] [--workers N] <artifact>...` where artifact
//! ∈ {fig1..fig13, table1..table6, ext1..ext13, all}. With `--out`, each
//! artifact is also written to `DIR/<id>.txt`. `--workers N` fans the
//! experiment sweeps across N threads — output is byte-identical at any
//! width.

use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        if pos + 1 >= args.len() {
            eprintln!("--out needs a directory argument");
            std::process::exit(2);
        }
        out_dir = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let mut workers = 1usize;
    if let Some(pos) = args.iter().position(|a| a == "--workers") {
        if pos + 1 >= args.len() {
            eprintln!("--workers needs a thread count");
            std::process::exit(2);
        }
        workers = match args.remove(pos + 1).parse() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("--workers: {e}");
                std::process::exit(2);
            }
        };
        args.remove(pos);
    }
    zerosim_bench::data::set_sweep_workers(workers);
    {
        // Report both the requested and the (clamped) effective width so
        // oversubscribed runs are visible rather than silently slower.
        let runner = zerosim_bench::data::runner();
        if runner.workers() != runner.requested_workers() {
            eprintln!(
                "[sweep workers: requested {} -> effective {} (clamped to machine)]",
                runner.requested_workers(),
                runner.workers()
            );
        } else {
            eprintln!("[sweep workers: {}]", runner.workers());
        }
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--out DIR] [--workers N] <artifact>... | all");
        eprintln!("artifacts: {}", zerosim_bench::ARTIFACTS.join(" "));
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        zerosim_bench::ARTIFACTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !zerosim_bench::ARTIFACTS.contains(id) {
            eprintln!(
                "unknown artifact {id:?}; known: {}",
                zerosim_bench::ARTIFACTS.join(" ")
            );
            std::process::exit(2);
        }
    }
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    for id in ids {
        let t0 = Instant::now();
        let body = zerosim_bench::render(id);
        println!("================ {id} ================");
        println!("{body}");
        if let Some(dir) = &out_dir {
            std::fs::write(format!("{dir}/{id}.txt"), &body).expect("write artifact");
        }
        eprintln!("[{id} generated in {:?}]", t0.elapsed());
    }
}
