//! ZL007 — fault-schedule sanity.
//!
//! Replays the schedule in firing order (time, then insertion) and
//! checks each event against the cluster and the accumulated fault
//! state: restores must restore *something*, node losses must not
//! repeat, magnitudes must be physical, and targets must exist. Events
//! past the simulation horizon are advisory — they are legal, they just
//! never fire. Re-degrading a link or resource that is already degraded
//! is also advisory: scale factors are absolute with respect to nominal
//! (not cumulative), so overlapping windows silently discard the first
//! window's restore semantics — usually a sign two sampled windows
//! should have been merged.

use std::collections::HashSet;

use zerosim_simkit::FaultKind;

use crate::diag::{LintCode, Severity, Site};
use crate::pass::{Artifacts, Pass, Sink};

/// ZL007 (see module docs).
#[derive(Debug)]
pub struct FaultSchedulePass;

impl Pass for FaultSchedulePass {
    fn code(&self) -> LintCode {
        LintCode::FaultSchedule
    }

    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>) {
        let Some(schedule) = art.faults else {
            return;
        };
        let cluster = art.cluster;
        let link_count = cluster.net().link_count();
        let resource_count = cluster.resource_slots().len();
        let node_count = cluster.spec().nodes;

        // Firing order: stable sort by time, insertion order on ties
        // (matches `FaultSchedule::cursor`). Sites stay insertion
        // indices so findings point at the event the caller wrote.
        let events = schedule.events();
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by(|&a, &b| events[a].at.cmp(&events[b].at).then(a.cmp(&b)));

        let mut faulted_links: HashSet<usize> = HashSet::new();
        let mut slowed_resources: HashSet<usize> = HashSet::new();
        let mut lost_nodes: HashSet<usize> = HashSet::new();

        for i in order {
            let ev = &events[i];
            let site = Site::FaultEvent(i);
            if let Some(h) = art.horizon_s {
                if ev.at.as_secs() > h {
                    sink.report_at_most(
                        LintCode::FaultSchedule,
                        Severity::Warning,
                        site.clone(),
                        format!(
                            "event at t={:.3}s is past the {h:.3}s horizon and never fires",
                            ev.at.as_secs()
                        ),
                        "shorten the schedule or extend the run".to_string(),
                    );
                }
            }
            match &ev.kind {
                FaultKind::SetLinkCap {
                    link,
                    bytes_per_sec,
                } => {
                    if link.index() >= link_count {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("targets unknown link {}", link.index()),
                            format!("the cluster has {link_count} links"),
                        );
                    } else if !(bytes_per_sec.is_finite() && *bytes_per_sec > 0.0) {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("non-physical link capacity {bytes_per_sec} B/s"),
                            "capacities must be finite and positive; use NodeLoss to kill \
                             connectivity"
                                .to_string(),
                        );
                    } else if !faulted_links.insert(link.index()) {
                        sink.report_at_most(
                            LintCode::FaultSchedule,
                            Severity::Warning,
                            site,
                            format!(
                                "re-caps link {} that is already degraded (overlapping windows)",
                                link.index()
                            ),
                            "capacities are absolute, not cumulative; merge the windows"
                                .to_string(),
                        );
                    }
                }
                FaultKind::ScaleLink { link, factor } => {
                    if link.index() >= link_count {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("targets unknown link {}", link.index()),
                            format!("the cluster has {link_count} links"),
                        );
                    } else if !(factor.is_finite() && *factor > 0.0) {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("non-physical link scale factor {factor}"),
                            "factors must be finite and positive".to_string(),
                        );
                    } else if !faulted_links.insert(link.index()) {
                        sink.report_at_most(
                            LintCode::FaultSchedule,
                            Severity::Warning,
                            site,
                            format!(
                                "re-degrades link {} that is already degraded \
                                 (overlapping windows)",
                                link.index()
                            ),
                            "factors are absolute, not cumulative; merge the windows".to_string(),
                        );
                    }
                }
                FaultKind::RestoreLink { link } => {
                    if link.index() >= link_count {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("targets unknown link {}", link.index()),
                            format!("the cluster has {link_count} links"),
                        );
                    } else if !faulted_links.remove(&link.index()) {
                        sink.report_at_most(
                            LintCode::FaultSchedule,
                            Severity::Warning,
                            site,
                            format!("restores link {} that was never degraded", link.index()),
                            "a restore without a prior fault is a no-op".to_string(),
                        );
                    }
                }
                FaultKind::SlowResource { resource, factor } => {
                    if *resource >= resource_count {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("targets unknown resource {resource}"),
                            format!("the cluster has {resource_count} compute resources"),
                        );
                    } else if !(factor.is_finite() && *factor > 0.0) {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("non-physical resource factor {factor}"),
                            "factors must be finite and positive".to_string(),
                        );
                    } else if !slowed_resources.insert(*resource) {
                        sink.report_at_most(
                            LintCode::FaultSchedule,
                            Severity::Warning,
                            site,
                            format!(
                                "re-slows resource {resource} that is already slowed \
                                 (overlapping windows)"
                            ),
                            "factors are absolute, not cumulative; merge the windows".to_string(),
                        );
                    }
                }
                FaultKind::RestoreResource { resource } => {
                    if *resource >= resource_count {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("targets unknown resource {resource}"),
                            format!("the cluster has {resource_count} compute resources"),
                        );
                    } else if !slowed_resources.remove(resource) {
                        sink.report_at_most(
                            LintCode::FaultSchedule,
                            Severity::Warning,
                            site,
                            format!("restores resource {resource} that was never slowed"),
                            "a restore without a prior fault is a no-op".to_string(),
                        );
                    }
                }
                FaultKind::NodeLoss { node } => {
                    if *node >= node_count {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("loses unknown node {node}"),
                            format!("the cluster has {node_count} node(s)"),
                        );
                    } else if !lost_nodes.insert(*node) {
                        sink.report(
                            LintCode::FaultSchedule,
                            site,
                            format!("node {node} is lost twice (overlapping node loss)"),
                            "a lost node stays lost; drop the duplicate event".to_string(),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use crate::pass::{AnalysisReport, PassManager};
    use zerosim_hw::{Cluster, ClusterSpec};
    use zerosim_simkit::{FaultSchedule, LinkId};

    fn run(schedule: &FaultSchedule, horizon: Option<f64>) -> AnalysisReport {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(FaultSchedulePass));
        let mut art = Artifacts::new(&cluster).with_faults(schedule);
        if let Some(h) = horizon {
            art = art.with_horizon_s(h);
        }
        pm.run(&art)
    }

    fn link(c: &Cluster) -> LinkId {
        c.links(0, zerosim_hw::LinkClass::Roce)[0]
    }

    #[test]
    fn degrade_then_restore_is_clean() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        let s = FaultSchedule::new(7)
            .at(
                1.0,
                FaultKind::ScaleLink {
                    link: link(&c),
                    factor: 0.25,
                },
            )
            .at(2.0, FaultKind::RestoreLink { link: link(&c) });
        let r = run(&s, Some(10.0));
        assert!(r.is_clean(), "{}", r.render_text());
        assert_eq!(r.warning_count(), 0);
    }

    #[test]
    fn restore_without_fault_warns_even_when_pushed_first() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        // Pushed out of time order: the restore (insertion 0) fires at
        // t=1 *before* the degrade at t=5, so it restores nothing.
        let s = FaultSchedule::new(7)
            .at(1.0, FaultKind::RestoreLink { link: link(&c) })
            .at(
                5.0,
                FaultKind::ScaleLink {
                    link: link(&c),
                    factor: 0.5,
                },
            );
        let r = run(&s, None);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.diagnostics[0].site, Site::FaultEvent(0));
    }

    #[test]
    fn overlapping_node_loss_and_bad_magnitudes_deny() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        let s = FaultSchedule::new(7)
            .at(1.0, FaultKind::NodeLoss { node: 1 })
            .at(2.0, FaultKind::NodeLoss { node: 1 })
            .at(
                3.0,
                FaultKind::ScaleLink {
                    link: link(&c),
                    factor: 0.0,
                },
            )
            .at(
                4.0,
                FaultKind::SlowResource {
                    resource: 999,
                    factor: 0.5,
                },
            );
        let r = run(&s, None);
        assert_eq!(r.deny_count(), 3);
        assert!(r.diagnostics[0].message.contains("lost twice"));
        assert!(r.diagnostics[1].message.contains("scale factor"));
        assert!(r.diagnostics[2].message.contains("unknown resource"));
    }

    #[test]
    fn overlapping_degradation_warns() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        let s = FaultSchedule::new(7)
            .at(
                1.0,
                FaultKind::ScaleLink {
                    link: link(&c),
                    factor: 0.5,
                },
            )
            .at(
                2.0,
                FaultKind::ScaleLink {
                    link: link(&c),
                    factor: 0.25,
                },
            )
            .at(3.0, FaultKind::RestoreLink { link: link(&c) })
            .at(
                1.0,
                FaultKind::SlowResource {
                    resource: 0,
                    factor: 0.5,
                },
            )
            .at(
                2.0,
                FaultKind::SlowResource {
                    resource: 0,
                    factor: 0.7,
                },
            );
        let r = run(&s, None);
        assert!(r.is_clean(), "{}", r.render_text());
        assert_eq!(r.warning_count(), 2);
        assert!(r.diagnostics[0].message.contains("re-degrades link"));
        assert!(r.diagnostics[1].message.contains("re-slows resource 0"));
        // Sequential (restore-separated) windows on the same target are fine.
        let sequential = FaultSchedule::new(7)
            .degrade_window(link(&c), 1.0, 0.5, 1.0)
            .degrade_window(link(&c), 5.0, 0.5, 1.0);
        let r = run(&sequential, Some(10.0));
        assert!(r.is_clean());
        assert_eq!(r.warning_count(), 0);
    }

    #[test]
    fn event_past_horizon_warns() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        let s = FaultSchedule::new(7).at(
            50.0,
            FaultKind::ScaleLink {
                link: link(&c),
                factor: 0.5,
            },
        );
        let r = run(&s, Some(10.0));
        assert!(r.is_clean());
        assert_eq!(r.warning_count(), 1);
        assert!(r.diagnostics[0].message.contains("never fires"));
    }
}
