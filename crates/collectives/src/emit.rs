//! Expansion of collectives into DAG task fragments.
//!
//! Every collective is compiled to the classic ring algorithm: `k` steps,
//! each step being one concurrent chunk flow per participating rank, with a
//! barrier between steps. This yields both the textbook communication
//! volumes (all-reduce moves `2 (n−1)/n · S` per rank) and realistic
//! utilization *patterns*: bursts on NVLink within a node, sustained
//! pressure on RoCE across nodes — the distinction Sec. IV-E of the paper
//! builds its analysis on.

use zerosim_hw::Cluster;
use zerosim_simkit::{DagBuilder, TaskId};

use crate::group::{ring_route, CommGroup};

/// Which collective to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Reduce + broadcast fused: every rank ends with the reduced buffer.
    AllReduce,
    /// Every rank ends with the concatenation of all ranks' shards.
    AllGather,
    /// Every rank ends with one reduced shard.
    ReduceScatter,
    /// One root rank ends with the reduced buffer.
    Reduce {
        /// Index (in ring order) of the receiving rank.
        root: usize,
    },
    /// One root rank's buffer ends up everywhere.
    Broadcast {
        /// Index (in ring order) of the sending rank.
        root: usize,
    },
}

impl CollectiveKind {
    /// Ring steps needed for `n` ranks.
    pub fn steps(&self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        match self {
            CollectiveKind::AllReduce => 2 * (n - 1),
            CollectiveKind::AllGather
            | CollectiveKind::ReduceScatter
            | CollectiveKind::Reduce { .. }
            | CollectiveKind::Broadcast { .. } => n - 1,
        }
    }

    /// Bytes each rank transmits in total for a buffer of `bytes`
    /// (per-rank wire volume of the ring algorithm).
    pub fn bytes_sent_per_rank(&self, n: usize, bytes: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let frac = (n - 1) as f64 / n as f64;
        match self {
            CollectiveKind::AllReduce => 2.0 * frac * bytes,
            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => frac * bytes,
            // Pipelined ring reduce/broadcast: interior ranks forward the
            // full buffer once; averaged per rank this is ≈ bytes.
            CollectiveKind::Reduce { .. } | CollectiveKind::Broadcast { .. } => frac * bytes,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            CollectiveKind::AllReduce => "allreduce",
            CollectiveKind::AllGather => "allgather",
            CollectiveKind::ReduceScatter => "reducescatter",
            CollectiveKind::Reduce { .. } => "reduce",
            CollectiveKind::Broadcast { .. } => "broadcast",
        }
    }
}

/// Handle to an emitted collective.
#[derive(Debug, Clone)]
pub struct CollectiveHandle {
    /// Joins when every rank has finished the collective.
    pub done: TaskId,
}

/// Appends the task fragment for `kind` over a `bytes`-sized buffer shared
/// by `group` to `dag`, starting after `deps`.
///
/// Tracks in the span log are the GPU resource indices of the ranks; spans
/// are labelled with the collective name (matching the NCCL kernel names
/// the paper's nsys timelines show).
///
/// # Panics
/// Panics if `bytes` is not positive and finite, or if a `root` index is
/// out of range.
pub fn emit_collective(
    dag: &mut DagBuilder,
    cluster: &Cluster,
    group: &CommGroup,
    kind: CollectiveKind,
    bytes: f64,
    deps: &[TaskId],
) -> CollectiveHandle {
    emit_collective_capped(dag, cluster, group, kind, bytes, deps, f64::INFINITY)
}

/// Like [`emit_collective`], with a per-flow rate ceiling on inter-node
/// hops (the effective NCCL efficiency of the issuing engine; see
/// [`crate::ring_route`]).
#[allow(clippy::too_many_arguments)]
pub fn emit_collective_capped(
    dag: &mut DagBuilder,
    cluster: &Cluster,
    group: &CommGroup,
    kind: CollectiveKind,
    bytes: f64,
    deps: &[TaskId],
    internode_cap: f64,
) -> CollectiveHandle {
    if uses_hierarchical_schedule(group, kind, bytes) {
        return emit_collective_hierarchical(dag, cluster, group, kind, bytes, deps, internode_cap);
    }
    let n = group.len().max(1) as f64;
    if bytes / n < COALESCE_BELOW_CHUNK {
        emit_collective_coalesced(dag, cluster, group, kind, bytes, deps, internode_cap)
    } else {
        emit_collective_stepwise(dag, cluster, group, kind, bytes, deps, internode_cap)
    }
}

/// Below ~8 MB per rank-chunk the ring is latency-bound and the
/// step-accurate expansion buys nothing; coalesce to keep DAGs small.
const COALESCE_BELOW_CHUNK: f64 = 8e6;

/// Above ~30 MB per rank-chunk, multi-node NCCL switches to the
/// hierarchical (intra-node ring + inter-node exchange) schedule that
/// crosses RoCE with S/2–S bytes instead of the flat ring's 1.75 S.
/// DDP's ~25 MB gradient buckets and Megatron's small activation
/// all-reduces stay on flat rings; ZeRO's whole-model-state collectives
/// go hierarchical.
const HIERARCHICAL_MIN_CHUNK: f64 = 30e6;

/// True when [`emit_collective_capped`] would pick the hierarchical
/// (intra-node + inter-node exchange) schedule for this collective.
pub fn uses_hierarchical_schedule(group: &CommGroup, kind: CollectiveKind, bytes: f64) -> bool {
    let n = group.len().max(1) as f64;
    group.splits_into_equal_nodes()
        && bytes / n >= HIERARCHICAL_MIN_CHUNK
        && matches!(
            kind,
            CollectiveKind::AllReduce | CollectiveKind::AllGather | CollectiveKind::ReduceScatter
        )
}

/// Closed-form total wire volume (bytes summed over every transfer task)
/// that [`emit_collective_capped`] emits for this collective — the
/// machine-checkable conservation law behind the paper's Table IV
/// analysis.
///
/// Flat ring schedules move `n · bytes_sent_per_rank(n, S)` in total
/// (all-reduce: `2 (n−1) · S / n` per rank). The hierarchical schedule is
/// accounted by mirroring its recursion: per-node intra collectives plus
/// the inter-node exchange. Per-flow 1-byte floors for degenerate sizes
/// are ignored; callers comparing against an emitted DAG should allow a
/// few KiB of slack.
pub fn wire_bytes(group: &CommGroup, kind: CollectiveKind, bytes: f64) -> f64 {
    let n = group.len();
    if n <= 1 {
        return 0.0;
    }
    let flat = |ranks: usize, k: CollectiveKind, s: f64| -> f64 {
        ranks as f64 * k.bytes_sent_per_rank(ranks, s)
    };
    if !uses_hierarchical_schedule(group, kind, bytes) {
        return flat(n, kind, bytes);
    }
    let parts = group.node_partition();
    let m = parts.len(); // nodes
    let g = parts[0].len(); // ranks per node
    let intra = |k: CollectiveKind, s: f64| -> f64 { m as f64 * flat(g, k, s) };
    // Inter-node exchange of `per_rank` bytes per column (see
    // `emit_collective_hierarchical`): pairwise both ways on two nodes,
    // a ring per column beyond that.
    let exchange = |per_rank: f64, ring_kind: CollectiveKind| -> f64 {
        if m == 2 {
            2.0 * g as f64 * per_rank
        } else {
            let col_size = match ring_kind {
                CollectiveKind::AllReduce => per_rank,
                _ => per_rank * m as f64,
            };
            g as f64 * flat(m, ring_kind, col_size)
        }
    };
    match kind {
        CollectiveKind::AllReduce => {
            intra(CollectiveKind::ReduceScatter, bytes)
                + exchange(bytes / g as f64, CollectiveKind::AllReduce)
                + intra(CollectiveKind::AllGather, bytes)
        }
        CollectiveKind::AllGather => {
            exchange(bytes / n as f64, CollectiveKind::AllGather)
                + intra(CollectiveKind::AllGather, bytes)
        }
        CollectiveKind::ReduceScatter => {
            intra(CollectiveKind::ReduceScatter, bytes)
                + exchange(bytes / n as f64, CollectiveKind::ReduceScatter)
        }
        other => flat(n, other, bytes),
    }
}

/// Two-level schedule for groups spanning nodes (the NCCL production
/// schedule on this topology): node-local ring phases over NVLink plus an
/// inter-node exchange over RoCE between corresponding ranks. For two
/// nodes the exchange is pairwise; for more, each rank-index column runs
/// a ring across the nodes.
///
/// Inter-node wire volume per node per direction: `S` for all-reduce,
/// `S/2` for all-gather and reduce-scatter on two nodes — matching the
/// RoCE averages of Table IV far better than a flat 8-rank ring (1.75 S)
/// would.
///
/// # Panics
/// Panics if `bytes` is not positive/finite, if the group's nodes do not
/// contribute equal rank counts, or for kinds other than all-reduce /
/// all-gather / reduce-scatter.
pub fn emit_collective_hierarchical(
    dag: &mut DagBuilder,
    cluster: &Cluster,
    group: &CommGroup,
    kind: CollectiveKind,
    bytes: f64,
    deps: &[TaskId],
    internode_cap: f64,
) -> CollectiveHandle {
    assert!(
        bytes.is_finite() && bytes > 0.0,
        "collective size must be positive (got {bytes})"
    );
    let parts = group.node_partition();
    assert!(
        parts.len() >= 2 && parts.iter().all(|p| p.len() == parts[0].len()),
        "hierarchical schedule needs equal ranks per node"
    );
    let g = parts[0].len();
    let node_groups: Vec<CommGroup> = parts.iter().cloned().map(CommGroup::new).collect();
    // Cross-node "columns": one rank per node at the same local index.
    let columns: Vec<Vec<zerosim_hw::GpuId>> = (0..g)
        .map(|t| parts.iter().map(|p| p[t]).collect())
        .collect();

    // Inter-node exchange of `per_rank` bytes per column. Two nodes:
    // pairwise both ways; more nodes: a ring per column.
    let exchange = |dag: &mut DagBuilder,
                    per_rank: f64,
                    ring_kind: CollectiveKind,
                    label: &str,
                    deps: &[TaskId]|
     -> TaskId {
        if parts.len() == 2 {
            let mut tasks = Vec::with_capacity(2 * g);
            for col in &columns {
                let (a, b) = (col[0], col[1]);
                for (src, dst) in [(a, b), (b, a)] {
                    // NCCL's NIC assignment is not fully NUMA-aware on
                    // this topology: half the exchange flows take the
                    // neighbouring socket's NIC, producing the xGMI
                    // traffic the paper reports for dual-node ZeRO
                    // (Sec. IV-E2).
                    let natural = cluster.gpu_socket(src).socket;
                    let nic = if src.gpu % 2 == 0 {
                        natural
                    } else {
                        1 - natural
                    };
                    let mut route = cluster.route_internode_gpu(src, dst, nic, nic);
                    route.cap = route.cap.min(internode_cap);
                    // Resource ids are small (one per GPU on the cluster).
                    #[allow(clippy::cast_possible_truncation)]
                    let track = cluster.gpu_resource(src).0 as u32;
                    let t = dag.transfer_capped(
                        route.links,
                        per_rank.max(1.0),
                        route.latency,
                        route.cap,
                        label,
                        track,
                        deps,
                    );
                    tasks.push(t);
                }
            }
            dag.marker(&tasks)
        } else {
            // Column buffer size: each node contributes one shard of its
            // node-local result, so the column collective always operates
            // on `bytes / g` total — for all-reduce each rank already
            // holds the full S/g shard, for all-gather/reduce-scatter the
            // per-node shards (S/n each) concatenate to the same S/g.
            let col_size = match ring_kind {
                CollectiveKind::AllReduce => per_rank,
                _ => per_rank * parts.len() as f64,
            };
            let mut dones = Vec::with_capacity(g);
            for col in &columns {
                let col_group = CommGroup::new(col.clone());
                // One rank per node: stays on the flat (coalesced) path.
                let h = emit_collective_coalesced(
                    dag,
                    cluster,
                    &col_group,
                    ring_kind,
                    col_size,
                    deps,
                    internode_cap,
                );
                dones.push(h.done);
            }
            dag.marker(&dones)
        }
    };

    let intra = |dag: &mut DagBuilder, k: CollectiveKind, b: f64, deps: &[TaskId]| -> TaskId {
        let dones: Vec<TaskId> = node_groups
            .iter()
            .map(|ng| emit_collective_capped(dag, cluster, ng, k, b, deps, internode_cap).done)
            .collect();
        dag.marker(&dones)
    };

    let done = match kind {
        CollectiveKind::AllReduce => {
            let rs = intra(dag, CollectiveKind::ReduceScatter, bytes, deps);
            let ex = exchange(
                dag,
                bytes / g as f64,
                CollectiveKind::AllReduce,
                "allreduce",
                &[rs],
            );
            intra(dag, CollectiveKind::AllGather, bytes, &[ex])
        }
        CollectiveKind::AllGather => {
            let n = (g * parts.len()) as f64;
            let ex = exchange(dag, bytes / n, CollectiveKind::AllGather, "allgather", deps);
            intra(dag, CollectiveKind::AllGather, bytes, &[ex])
        }
        CollectiveKind::ReduceScatter => {
            let n = (g * parts.len()) as f64;
            let rs = intra(dag, CollectiveKind::ReduceScatter, bytes, deps);
            exchange(
                dag,
                bytes / n,
                CollectiveKind::ReduceScatter,
                "reducescatter",
                &[rs],
            )
        }
        other => panic!("hierarchical schedule does not support {other:?}"),
    };
    CollectiveHandle { done }
}

/// Step-accurate ring expansion: `steps` barrier-separated phases of one
/// chunk flow per rank. Highest fidelity; O(steps · ranks) tasks.
pub fn emit_collective_stepwise(
    dag: &mut DagBuilder,
    cluster: &Cluster,
    group: &CommGroup,
    kind: CollectiveKind,
    bytes: f64,
    deps: &[TaskId],
    internode_cap: f64,
) -> CollectiveHandle {
    assert!(
        bytes.is_finite() && bytes > 0.0,
        "collective size must be positive (got {bytes})"
    );
    let order = group.ring_order();
    let n = order.len();
    if n <= 1 {
        return CollectiveHandle {
            done: dag.marker(deps),
        };
    }
    if let CollectiveKind::Reduce { root } | CollectiveKind::Broadcast { root } = kind {
        assert!(root < n, "root {root} out of range for {n} ranks");
    }

    let rings = group.ring_count();
    let steps = kind.steps(n);
    let chunk = (bytes / (n as f64) / rings as f64).max(1.0);
    let label = kind.label();

    let mut frontier: Vec<TaskId> = deps.to_vec();
    for step in 0..steps {
        let mut step_tasks = Vec::with_capacity(n * rings);
        for ring in 0..rings {
            for (i, &src) in order.iter().enumerate() {
                // Which ranks actually transmit this step?
                let active = match kind {
                    CollectiveKind::AllReduce
                    | CollectiveKind::AllGather
                    | CollectiveKind::ReduceScatter => true,
                    CollectiveKind::Reduce { root } => {
                        // Pipelined ring reduce towards root: the rank
                        // `step+1` hops upstream of root forwards first;
                        // model as all ranks except root forwarding each
                        // step (full-pipeline approximation).
                        i != root
                    }
                    CollectiveKind::Broadcast { root } => i != (root + n - 1) % n,
                };
                if !active {
                    continue;
                }
                let dst = order[(i + 1) % n];
                let route = ring_route(cluster, src, dst, ring, internode_cap);
                // Resource ids are small (one per GPU on the cluster).
                #[allow(clippy::cast_possible_truncation)]
                let track = cluster.gpu_resource(src).0 as u32;
                let t = dag.transfer_capped(
                    route.links,
                    chunk,
                    route.latency,
                    route.cap,
                    label,
                    track,
                    &frontier,
                );
                step_tasks.push(t);
            }
        }
        // Barrier between ring steps.
        frontier = vec![dag.marker(&step_tasks)];
        let _ = step;
    }

    CollectiveHandle { done: frontier[0] }
}

/// Coalesced ring approximation: one aggregate flow per (rank, ring)
/// carrying that rank's total wire volume, with the pipeline depth folded
/// into the flow's startup latency (`steps × hop latency`). Same volumes
/// and the same bottleneck links as the stepwise form, O(ranks) tasks.
///
/// # Panics
/// Same conditions as [`emit_collective_stepwise`].
pub fn emit_collective_coalesced(
    dag: &mut DagBuilder,
    cluster: &Cluster,
    group: &CommGroup,
    kind: CollectiveKind,
    bytes: f64,
    deps: &[TaskId],
    internode_cap: f64,
) -> CollectiveHandle {
    assert!(
        bytes.is_finite() && bytes > 0.0,
        "collective size must be positive (got {bytes})"
    );
    let order = group.ring_order();
    let n = order.len();
    if n <= 1 {
        return CollectiveHandle {
            done: dag.marker(deps),
        };
    }
    if let CollectiveKind::Reduce { root } | CollectiveKind::Broadcast { root } = kind {
        assert!(root < n, "root {root} out of range for {n} ranks");
    }
    let rings = group.ring_count();
    let steps = kind.steps(n) as u64;
    let volume = (kind.bytes_sent_per_rank(n, bytes) / rings as f64).max(1.0);
    let label = kind.label();
    let mut tasks = Vec::with_capacity(n * rings);
    for ring in 0..rings {
        for (i, &src) in order.iter().enumerate() {
            let skip = match kind {
                CollectiveKind::Reduce { root } => i == root,
                CollectiveKind::Broadcast { root } => i == (root + n - 1) % n,
                _ => false,
            };
            if skip {
                continue;
            }
            let dst = order[(i + 1) % n];
            let route = ring_route(cluster, src, dst, ring, internode_cap);
            // Resource ids are small (one per GPU on the cluster).
            #[allow(clippy::cast_possible_truncation)]
            let track = cluster.gpu_resource(src).0 as u32;
            let t = dag.transfer_capped(
                route.links,
                volume,
                route.latency * steps,
                route.cap,
                label,
                track,
                deps,
            );
            tasks.push(t);
        }
    }
    CollectiveHandle {
        done: dag.marker(&tasks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::{ClusterSpec, GpuId};
    use zerosim_simkit::{DagEngine, SimTime as T};

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::default()).unwrap()
    }

    fn single_node_group(c: &Cluster) -> CommGroup {
        CommGroup::new(c.node_gpus(0))
    }

    #[test]
    fn step_counts() {
        let ar = CollectiveKind::AllReduce;
        assert_eq!(ar.steps(4), 6);
        assert_eq!(ar.steps(1), 0);
        assert_eq!(CollectiveKind::AllGather.steps(8), 7);
        assert_eq!(CollectiveKind::Reduce { root: 0 }.steps(4), 3);
    }

    #[test]
    fn allreduce_volume_is_2_frac() {
        let k = CollectiveKind::AllReduce;
        let v = k.bytes_sent_per_rank(4, 100.0);
        assert!((v - 150.0).abs() < 1e-9);
        assert_eq!(k.bytes_sent_per_rank(1, 100.0), 0.0);
    }

    #[test]
    fn zero3_extra_volume_is_half() {
        // ZeRO-3 swaps DDP's all-reduce (2·frac) for an all-gather +
        // reduce-scatter in fwd/bwd plus another all-gather: 3·frac —
        // the paper's "50% increase in communication volume".
        let n = 4;
        let s = 100.0;
        let ddp = CollectiveKind::AllReduce.bytes_sent_per_rank(n, s);
        let z3 = CollectiveKind::AllGather.bytes_sent_per_rank(n, s) * 2.0
            + CollectiveKind::ReduceScatter.bytes_sent_per_rank(n, s);
        assert!((z3 / ddp - 1.5).abs() < 1e-9);
    }

    #[test]
    fn coalesced_and_stepwise_agree_on_volume() {
        let c = cluster();
        let g = single_node_group(&c);
        for kind in [
            CollectiveKind::AllReduce,
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
        ] {
            let mut b1 = DagBuilder::new();
            emit_collective_stepwise(&mut b1, &c, &g, kind, 64e6, &[], f64::INFINITY);
            let mut b2 = DagBuilder::new();
            emit_collective_coalesced(&mut b2, &c, &g, kind, 64e6, &[], f64::INFINITY);
            let v1 = b1.build().total_transfer_bytes();
            let v2 = b2.build().total_transfer_bytes();
            assert!(
                (v1 - v2).abs() < 1.0,
                "{kind:?}: stepwise {v1} vs coalesced {v2}"
            );
        }
    }

    #[test]
    fn auto_dispatch_coalesces_small_collectives() {
        let c = cluster();
        let g = single_node_group(&c);
        let mut small = DagBuilder::new();
        emit_collective(&mut small, &c, &g, CollectiveKind::AllReduce, 4e6, &[]);
        let mut big = DagBuilder::new();
        emit_collective(&mut big, &c, &g, CollectiveKind::AllReduce, 400e6, &[]);
        // Coalesced: 4 flows + 1 marker; stepwise: 6 steps × (4 flows + marker).
        assert!(small.len() < 8, "small collective should coalesce");
        assert!(big.len() > 20, "large collective should stay stepwise");
    }

    #[test]
    fn emitted_allreduce_moves_right_bytes() {
        let mut c = cluster();
        let g = single_node_group(&c);
        let mut b = DagBuilder::new();
        emit_collective_stepwise(
            &mut b,
            &c,
            &g,
            CollectiveKind::AllReduce,
            4e6,
            &[],
            f64::INFINITY,
        );
        let dag = b.build();
        // 6 steps × 4 flows of 1 MB chunks.
        assert!((dag.total_transfer_bytes() - 24e6).abs() < 1.0);
        let slots = c.resource_slots();
        let mut eng = DagEngine::new(slots);
        let out = eng.run(c.net_mut(), &dag, T::ZERO, None).unwrap();
        assert!(out.makespan() > T::ZERO);
    }

    #[test]
    fn single_rank_collective_is_noop() {
        let mut c = cluster();
        let g = CommGroup::new(vec![GpuId { node: 0, gpu: 0 }]);
        let mut b = DagBuilder::new();
        emit_collective(&mut b, &c, &g, CollectiveKind::AllReduce, 1e6, &[]);
        let dag = b.build();
        assert_eq!(dag.total_transfer_bytes(), 0.0);
        let mut eng = DagEngine::new(c.resource_slots());
        let out = eng.run(c.net_mut(), &dag, T::ZERO, None).unwrap();
        assert_eq!(out.makespan(), T::ZERO);
    }

    #[test]
    fn internode_collective_uses_both_nics() {
        let mut c = cluster();
        let g = CommGroup::world(&c);
        let mut b = DagBuilder::new();
        emit_collective(&mut b, &c, &g, CollectiveKind::AllReduce, 8e6, &[]);
        let dag = b.build();
        let mut rec = zerosim_simkit::BandwidthRecorder::new(T::from_ms(1.0));
        let mut eng = DagEngine::new(c.resource_slots());
        eng.run(c.net_mut(), &dag, T::ZERO, Some(&mut rec)).unwrap();
        // Both nodes' RoCE links must have carried traffic.
        for node in 0..2 {
            let roce: f64 = c
                .links(node, zerosim_hw::LinkClass::Roce)
                .iter()
                .map(|l| rec.total_bytes(*l))
                .sum();
            assert!(roce > 0.0, "node {node} RoCE unused");
        }
        // And NVLink should dominate RoCE in byte count (intra-node hops
        // are 3 of every 4 ring edges).
        let nvl: f64 = c
            .links(0, zerosim_hw::LinkClass::NvLink)
            .iter()
            .map(|l| rec.total_bytes(*l))
            .sum();
        let roce: f64 = c
            .links(0, zerosim_hw::LinkClass::Roce)
            .iter()
            .map(|l| rec.total_bytes(*l))
            .sum();
        assert!(nvl > roce);
    }

    #[test]
    fn allreduce_time_scales_with_bytes() {
        let mut c = cluster();
        let g = single_node_group(&c);
        let mut time_for = |bytes: f64| {
            let mut b = DagBuilder::new();
            emit_collective(&mut b, &c, &g, CollectiveKind::AllReduce, bytes, &[]);
            let dag = b.build();
            let mut eng = DagEngine::new(c.resource_slots());
            eng.run(c.net_mut(), &dag, T::ZERO, None)
                .unwrap()
                .makespan()
                .as_secs()
        };
        let t1 = time_for(100e6);
        let t2 = time_for(200e6);
        assert!(t2 > 1.5 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bytes_panics() {
        let mut b = DagBuilder::new();
        let c = cluster();
        let g = single_node_group(&c);
        emit_collective(&mut b, &c, &g, CollectiveKind::AllReduce, 0.0, &[]);
    }
}
