//! The ZeRO stage / offload capability matrix (Table I of the paper).

use crate::zero::ZeroStage;

/// What a DeepSpeed ZeRO stage partitions and where it may offload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroCapability {
    /// Stage number (0 = DeepSpeed disabled).
    pub stage: u8,
    /// Optimizer states are partitioned.
    pub partitions_optimizer: bool,
    /// Gradients are partitioned.
    pub partitions_gradients: bool,
    /// Parameters are partitioned.
    pub partitions_parameters: bool,
    /// Optimizer states may be offloaded to CPU memory.
    pub optimizer_cpu_offload: bool,
    /// Optimizer states may be offloaded to NVMe.
    pub optimizer_nvme_offload: bool,
    /// Parameters may be offloaded to CPU memory.
    pub parameter_cpu_offload: bool,
    /// Parameters may be offloaded to NVMe.
    pub parameter_nvme_offload: bool,
}

impl ZeroCapability {
    /// The capability row for `stage` — Table I verbatim.
    pub fn for_stage(stage: ZeroStage) -> Self {
        match stage {
            ZeroStage::One => ZeroCapability {
                stage: 1,
                partitions_optimizer: true,
                partitions_gradients: false,
                partitions_parameters: false,
                optimizer_cpu_offload: true,
                optimizer_nvme_offload: false,
                parameter_cpu_offload: false,
                parameter_nvme_offload: false,
            },
            ZeroStage::Two => ZeroCapability {
                stage: 2,
                partitions_optimizer: true,
                partitions_gradients: true,
                partitions_parameters: false,
                optimizer_cpu_offload: true,
                optimizer_nvme_offload: false,
                parameter_cpu_offload: false,
                parameter_nvme_offload: false,
            },
            ZeroStage::Three => ZeroCapability {
                stage: 3,
                partitions_optimizer: true,
                partitions_gradients: true,
                partitions_parameters: true,
                optimizer_cpu_offload: true,
                optimizer_nvme_offload: true,
                parameter_cpu_offload: true,
                parameter_nvme_offload: true,
            },
        }
    }

    /// All three rows in stage order.
    pub fn table() -> [ZeroCapability; 3] {
        [
            Self::for_stage(ZeroStage::One),
            Self::for_stage(ZeroStage::Two),
            Self::for_stage(ZeroStage::Three),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        let t = ZeroCapability::table();
        // Stage 1: optimizer only, CPU offload only.
        assert!(t[0].partitions_optimizer && !t[0].partitions_gradients);
        assert!(t[0].optimizer_cpu_offload && !t[0].optimizer_nvme_offload);
        // Stage 2 adds gradients, still no NVMe.
        assert!(t[1].partitions_gradients && !t[1].partitions_parameters);
        assert!(!t[1].optimizer_nvme_offload && !t[1].parameter_cpu_offload);
        // Stage 3: everything.
        assert!(t[2].partitions_parameters);
        assert!(t[2].optimizer_nvme_offload && t[2].parameter_nvme_offload);
        assert_eq!([t[0].stage, t[1].stage, t[2].stage], [1, 2, 3]);
    }
}
