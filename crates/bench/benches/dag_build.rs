//! Cost of compiling strategies into task graphs (the per-configuration
//! setup overhead of every experiment), split by pipeline stage:
//!
//! * `dag_build/*` — the full one-shot pipeline (plan → lower → stamp),
//!   what the seed implementation paid on **every** iteration;
//! * `plan_cache/lower_*` — the lowering a cached run pays **once**;
//! * `plan_cache/stamp_*` — the per-iteration re-stamp, which must stay
//!   orders of magnitude cheaper than lowering for the cache to matter.

use zerosim_hw::{Cluster, ClusterSpec};
use zerosim_model::GptConfig;
use zerosim_strategies::{lower, Calibration, Strategy, StrategyPlan, TrainOptions, ZeroStage};
use zerosim_testkit::bench::Bench;

fn configs() -> Vec<(&'static str, Strategy, f64, usize)> {
    vec![
        ("ddp_1p4", Strategy::Ddp, 1.4, 1usize),
        (
            "zero3_6p6",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            6.6,
            1,
        ),
        (
            "megatron_tp8_11b",
            Strategy::Megatron { tp: 8, pp: 1 },
            11.2,
            2,
        ),
    ]
}

fn bench_dag_build(c: &mut Bench) {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let calib = Calibration::default();
    let mut group = c.benchmark_group("dag_build");
    for (name, strategy, billions, nodes) in configs() {
        let model = GptConfig::paper_model_with_params(billions);
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                strategy
                    .build_iteration(&cluster, &model, &opts, &calib)
                    .unwrap()
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_plan_cache(c: &mut Bench) {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let calib = Calibration::default();
    let mut group = c.benchmark_group("plan_cache");
    for (name, strategy, billions, nodes) in configs() {
        let model = GptConfig::paper_model_with_params(billions);
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        let ctx = zerosim_strategies::IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let plan = strategy.plan_iteration(&ctx).unwrap();
        group.bench_function(format!("lower_{name}").as_str(), |b| {
            b.iter(|| lower(&plan, &cluster, &calib).unwrap().len());
        });
        let mut lowered = lower(&plan, &cluster, &calib).unwrap();
        let mut seed = 0u64;
        group.bench_function(format!("stamp_{name}").as_str(), |b| {
            b.iter(|| {
                seed += 1;
                lowered.stamp(seed).len()
            });
        });
    }
    group.finish();
}

zerosim_testkit::bench_main!(bench_dag_build, bench_plan_cache);
