//! Zero-dependency test substrate for the ZeroSim workspace.
//!
//! The workspace must build and test **hermetically** — with no registry
//! access whatsoever — so everything the tests and benches used to pull
//! from crates.io lives here instead:
//!
//! * [`rng`] — a deterministic [splitmix64 + xoshiro256**] generator with
//!   explicit seeding. Same seed ⇒ same sequence, on every platform.
//! * [`gen`] — composable value generators with failure-case shrinking
//!   (the `proptest` replacement's strategy layer).
//! * [`prop`] — the property runner: case counts and seeds come from
//!   `ZEROSIM_PT_CASES` / `ZEROSIM_PT_SEED`, and a failing case prints
//!   the seed needed to replay it before panicking.
//! * [`bench`] — a micro-bench harness (warmup + timed samples,
//!   median/p90 reporting) compatible with `harness = false` bench
//!   targets (the `criterion` replacement).
//! * [`json`] — a minimal JSON value, renderer, parser, and
//!   [`json::ToJson`]/[`json::FromJson`] traits plus the [`impl_json!`]
//!   derive-macro replacement (the `serde`+`serde_json` replacement).
//! * [`domain`] — generators for ZeroSim's domain shapes (link-capacity
//!   vectors, flow path sets, GPT configs, cluster shapes) expressed as
//!   plain data so this crate stays dependency-free.
//! * [`pool`] — a scoped work-stealing thread pool on `std::thread` only
//!   (the `rayon` replacement) with deterministic input-ordered result
//!   collection; `core::sweep` fans parallel simulation runs over it.
//!
//! # Quick start
//!
//! ```
//! use zerosim_testkit::gen::{f64_range, vec_of};
//! use zerosim_testkit::prop::{check, Config};
//!
//! // Every element of a generated capacity vector is positive.
//! check(
//!     "caps_positive",
//!     &Config::from_env(64),
//!     &vec_of(f64_range(1.0, 1e9), 1, 8),
//!     |caps| {
//!         for c in caps {
//!             if *c <= 0.0 {
//!                 return Err(format!("non-positive capacity {c}"));
//!             }
//!         }
//!         Ok(())
//!     },
//! );
//! ```
//!
//! [splitmix64 + xoshiro256**]: https://prng.di.unimi.it/

pub mod bench;
pub mod domain;
pub mod gen;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;

pub use gen::Gen;
pub use json::{FromJson, Json, JsonError, ToJson};
pub use pool::ThreadPool;
pub use prop::{check, Config};
pub use rng::Rng;

/// Re-export of [`std::hint::black_box`] so benches don't need to reach
/// into `std::hint` themselves (criterion's `black_box` equivalent).
pub use std::hint::black_box;
