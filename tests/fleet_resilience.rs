//! Fleet-resilience integration suite (PR 8).
//!
//! Property evidence for the `core::fleet` layer, end to end through the
//! public APIs:
//!
//! 1. **Determinism** — MTBF-sampled schedules are byte-identical per
//!    seed, and Monte-Carlo ensembles are byte-identical at any worker
//!    width.
//! 2. **Lint cleanliness** — every sampled schedule passes planlint
//!    ZL007 with zero findings: renewal windows never overlap, restores
//!    always follow degradations, node losses never repeat, and nothing
//!    outlives the horizon.
//! 3. **Statistics** — sampled event counts track the configured hazard
//!    rates within statistical bounds.
//! 4. **Young/Daly** — the analytic checkpoint interval beats both a 2×
//!    and a 0.5× cadence on simulated ensemble goodput for all three
//!    golden configurations (the debug-budget twin of the release
//!    `fleetplan --bench` gate in `scripts/verify.sh`).

use zerosim_analyzer::{Artifacts, LintConfig, PassManager};
use zerosim_bench::experiments::fleet::{golden_bracket, golden_configs};
use zerosim_core::{
    daly_interval_s, run_ensemble, waste_fraction, young_interval_s, ComponentHazard,
    EnsembleConfig, FleetProfile, RunConfig, SweepSpec,
};
use zerosim_hw::{Cluster, ClusterSpec};
use zerosim_model::GptConfig;
use zerosim_strategies::{Strategy, TrainOptions};

/// A compressed production mix: the canonical per-node-day profile
/// squeezed so a seconds-scale horizon sees real event counts.
fn compressed_mix() -> FleetProfile {
    FleetProfile::from_node_rate(1.0).scale_time(50.0 / 86_400.0)
}

#[test]
fn sampled_schedules_are_byte_identical_per_seed() {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    for profile in [compressed_mix(), FleetProfile::node_only(8.0)] {
        let a = profile.sample_schedule(&cluster, 30.0, 1234).unwrap();
        let b = profile.sample_schedule(&cluster, 30.0, 1234).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.events(), b.events());
        let c = profile.sample_schedule(&cluster, 30.0, 1235).unwrap();
        assert_ne!(a.digest(), c.digest(), "seed must drive the sample");
    }
}

#[test]
fn sampled_schedules_lint_clean() {
    // Every sampled schedule must pass ZL007 with zero findings — the
    // renewal construction (sequential windows, one loss per node,
    // horizon-clamped restores) is lint-clean by design.
    let cluster = Cluster::new(ClusterSpec::default().with_nodes(4)).unwrap();
    let horizon = 25.0;
    for seed in 0..6 {
        let schedule = compressed_mix()
            .sample_schedule(&cluster, horizon, seed)
            .unwrap();
        assert!(!schedule.is_empty(), "seed {seed} sampled nothing");
        let pm = PassManager::with_default_passes(LintConfig::new());
        let report = pm.run(
            &Artifacts::new(&cluster)
                .with_faults(&schedule)
                .with_horizon_s(horizon),
        );
        assert!(
            report.is_clean() && report.warning_count() == 0,
            "seed {seed} lints dirty:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn event_counts_track_the_configured_rate() {
    let cluster = Cluster::new(ClusterSpec::default().with_nodes(4)).unwrap();
    let spec = cluster.spec().clone();
    let horizon = 300.0;
    let profile = FleetProfile {
        link: Some(ComponentHazard::exponential(40.0, 2.0, 0.25)),
        nvme: Some(ComponentHazard::weibull(60.0, 0.8, 1.0, 0.25)),
        ..FleetProfile::healthy()
    };
    let expected = profile.expected_events(spec.nodes, spec.gpus_per_node, horizon);
    assert!(expected > 20.0, "weak test: expected {expected}");
    // Each node window fans out over that node's link group, so scale
    // the per-component expectation by the group sizes.
    let roce = cluster.links(0, zerosim_hw::LinkClass::Roce).len() as f64;
    let nvme = cluster.links(0, zerosim_hw::LinkClass::NvmeDev).len() as f64;
    let n = spec.nodes as f64;
    let expected = n * (horizon / 40.0) * 2.0 * roce + n * (horizon / 60.0) * 2.0 * nvme;
    let seeds = 10u64;
    let mut total = 0usize;
    for seed in 0..seeds {
        total += profile
            .sample_schedule(&cluster, horizon, seed)
            .unwrap()
            .len();
    }
    let mean = total as f64 / seeds as f64;
    // Renewal repair windows shave a few percent off the raw rate; ±25%
    // catches a broken sampler (2× off) without flaking.
    assert!(
        (mean - expected).abs() < 0.25 * expected,
        "sampled {mean} events/schedule, expected ≈ {expected}"
    );
}

#[test]
fn ensembles_are_width_invariant() {
    let base = SweepSpec::new(
        "fleet-int / ddp",
        Strategy::Ddp,
        GptConfig::paper_model_with_params(1.4),
        TrainOptions::for_nodes(1),
    )
    .with_cluster(ClusterSpec::default().with_nodes(1))
    .with_run(RunConfig {
        warmup_iters: 0,
        measure_iters: 4,
        ..RunConfig::default()
    });
    let profile = FleetProfile::node_only(6.0);
    let narrow = EnsembleConfig::new(5, 2.0).with_seed(7).with_workers(1);
    let wide = EnsembleConfig::new(5, 2.0).with_seed(7).with_workers(3);
    let a = run_ensemble(&base, &profile, &narrow).unwrap();
    let b = run_ensemble(&base, &profile, &wide).unwrap();
    assert_eq!(
        a.digest, b.digest,
        "ensemble digest must be width-invariant"
    );
    assert_eq!(a.goodput_tflops, b.goodput_tflops);
    assert_eq!(a.ttr_s, b.ttr_s);
    assert_eq!(a.failed, 0);
    assert!(a.recoveries > 0, "the compressed MTBF must actually bite");
    assert!(a.goodput_tflops.p50 > 0.0);
}

#[test]
fn analytic_waste_is_minimized_at_young() {
    // The waste model the fleet search ranks with is convex with its
    // minimum at τ_young, for any (C, M) with C < M.
    for (c, m) in [(0.1, 8.0), (0.5, 50.0), (2.0, 600.0)] {
        let opt = young_interval_s(c, m);
        let w = |tau: f64| waste_fraction(c, tau, m, 0.0);
        assert!(w(opt) < w(opt / 2.0), "C={c} M={m}");
        assert!(w(opt) < w(opt * 2.0), "C={c} M={m}");
        // Daly's refinement stays within a few percent of Young here.
        assert!((daly_interval_s(c, m) - opt).abs() < 0.1 * opt);
    }
}

#[test]
fn young_daly_beats_the_bracket_on_every_golden_config() {
    // Debug-budget twin of the release gate: 6 samples, 12 measured
    // iterations. Same physics, same strict win condition.
    for (name, strategy, nodes) in golden_configs() {
        let b = golden_bracket(name, &strategy, nodes, 6, 12, 4);
        assert!(
            b.yd_wins(),
            "{name}: opt {:?} must beat half {:?} and double {:?}",
            b.opt,
            b.half,
            b.double
        );
        assert_eq!(b.opt.failed, 0, "{name}: recovery budget exhausted");
        assert!(
            b.half.interval_iters < b.opt.interval_iters
                && b.opt.interval_iters < b.double.interval_iters,
            "{name}: bracket points must be distinct cadences"
        );
    }
}
