//! Differential engine-equivalence suite: the arena executor and the
//! reference executor must be *bitwise* interchangeable. Every golden
//! paper configuration, at several jitter seeds, and every ext11 fault
//! scenario (driven through `run_resilient`, including checkpoint/restart
//! recovery) is executed under both [`EngineMode`]s and compared by
//! `TrainingReport::digest()` — which hashes iteration timings, span
//! timelines, and bandwidth tables, so any divergence in event order,
//! slot arbitration, or fault handling shows up as a byte difference.
//!
//! These tests run in the debug profile, where shadow verification is
//! default-on: each arena run *additionally* replays on the reference
//! engine against cloned state and asserts outcome/span/seq equality
//! inside the engine itself. The digest comparison here is the end-to-end
//! check on top of that.

use zerosim_bench::data::golden_specs;
use zerosim_bench::experiments::resilience::{cell_spec, fault_matrix_scenarios, MATRIX_BILLIONS};
use zerosim_core::{EngineMode, SweepSpec};
use zerosim_model::GptConfig;
use zerosim_strategies::{Strategy, ZeroStage};

/// Runs one spec under the given engine and returns (digest, report).
fn digest_under(spec: &SweepSpec, mode: EngineMode) -> (u64, zerosim_core::TrainingReport) {
    let run = spec
        .clone()
        .with_engine(mode)
        .execute()
        .expect("spec executes");
    (run.digest, run.report)
}

#[test]
fn golden_dozen_digests_identically_across_engines_and_seeds() {
    for seed in [0u64, 1, 7, 42] {
        for mut spec in golden_specs() {
            spec.opts.jitter_seed = seed;
            let (arena, arena_report) = digest_under(&spec, EngineMode::Arena);
            let (reference, reference_report) = digest_under(&spec, EngineMode::Reference);
            assert_eq!(
                arena, reference,
                "engine digests diverged for {} at seed {seed}",
                spec.label
            );
            // The digest excludes engine statistics by design; check the
            // semantic work counters agree separately. Arena builds/reuse
            // and shadow counts legitimately differ between modes.
            assert_eq!(
                arena_report.engine.tasks_finished, reference_report.engine.tasks_finished,
                "task count diverged for {} at seed {seed}",
                spec.label
            );
            assert_eq!(
                arena_report.engine.flows_started, reference_report.engine.flows_started,
                "flow count diverged for {} at seed {seed}",
                spec.label
            );
        }
    }
}

#[test]
fn fault_matrix_digests_identically_across_engines() {
    // ZeRO-3 exercises every resilient path: sharded collectives, the
    // checkpoint cadence, and restart-and-replay on node loss.
    let strategy = Strategy::Zero {
        stage: ZeroStage::Three,
    };
    let model = GptConfig::paper_model_with_params(MATRIX_BILLIONS);

    // The healthy run anchors each fault's injection time, exactly as
    // ext11 does — and must itself agree across engines.
    let healthy = cell_spec(&strategy, &model, &fault_matrix_scenarios(1.0)[0]);
    let (arena_h, arena_report) = digest_under(&healthy, EngineMode::Arena);
    let (reference_h, _) = digest_under(&healthy, EngineMode::Reference);
    assert_eq!(arena_h, reference_h, "healthy cell diverged");
    let wall = arena_report
        .resilience
        .as_ref()
        .expect("resilient runs carry metrics")
        .wall_time
        .as_secs();

    for scenario in fault_matrix_scenarios(wall).into_iter().skip(1) {
        let spec = cell_spec(&strategy, &model, &scenario);
        let (arena, arena_report) = digest_under(&spec, EngineMode::Arena);
        let (reference, reference_report) = digest_under(&spec, EngineMode::Reference);
        assert_eq!(
            arena,
            reference,
            "engine digests diverged under fault scenario {}",
            scenario.label()
        );
        assert_eq!(
            arena_report.resilience,
            reference_report.resilience,
            "resilience metrics diverged under {}",
            scenario.label()
        );
    }
}
