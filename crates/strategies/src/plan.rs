//! The workload-plan intermediate representation (IR).
//!
//! Strategies no longer hand-emit raw simkit tasks. Instead they describe
//! one unit of work — a training iteration, a checkpoint snapshot, a
//! serving prefill, or one decode step — as a [`WorkloadPlan`] of
//! *semantic* operations (layer compute, collectives, tier transfers,
//! optimizer steps, KV-cache appends) with explicit dependencies and
//! phase labels. The [`crate::lower`] pass then compiles the plan to a
//! [`zerosim_simkit::Dag`] once per configuration, and the engine
//! re-stamps only the jittered durations per iteration or decode step.
//!
//! Training and inference share this one IR: the [`WorkloadKind`] carries
//! a per-kind validation contract (training conservation/ordering laws
//! for [`WorkloadKind::Iteration`], state movement for
//! [`WorkloadKind::Checkpoint`], KV-cache residency and token-batch
//! semantics for [`WorkloadKind::Prefill`]/[`WorkloadKind::Decode`]), so
//! lowering, stamping, the engines, and planlint serve both worlds
//! through one code path.
//!
//! Putting a typed IR between strategy semantics and DAG emission buys
//! three things the seed implementation lacked:
//!
//! 1. **Extensibility** — out-of-tree strategies implement
//!    [`crate::StrategyPlan`] and emit ops; they never touch `TaskSpec`.
//! 2. **Validation** — [`IterPlan::validate`] machine-checks the paper's
//!    conservation laws (collective wire-volume closed forms, route
//!    feasibility, phase ordering) on every plan.
//! 3. **Caching** — plan structure is iteration-invariant, so the engine
//!    lowers once and re-stamps durations instead of rebuilding the DAG
//!    `warmup + measure` times per run.

use std::collections::BTreeMap;

use zerosim_collectives::{wire_bytes, CollectiveKind, CommGroup};
use zerosim_hw::{Cluster, GpuId, IoDir, MemLoc, SocketId, VolumeId};

use crate::error::StrategyError;

/// Identifies an operation within one [`IterPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// Index of the op in emission (topological) order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Which part of the workload an op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseStage {
    /// Input pipeline: iteration prologue, host prep, H2D staging.
    Input,
    /// Forward pass (per micro-step).
    Forward,
    /// Backward pass including gradient communication (per micro-step).
    Backward,
    /// Optimizer step and post-step parameter redistribution.
    Step,
    /// Checkpoint/restore traffic (state snapshots to DRAM/NVMe); only
    /// used by [`WorkloadKind::Checkpoint`] plans.
    Checkpoint,
    /// Serving prompt processing (one forward over the batched prompts);
    /// only used by [`WorkloadKind::Prefill`] plans.
    Prefill,
    /// Serving token generation (one forward per emitted token); only
    /// used by [`WorkloadKind::Decode`] plans, where `micro` is the
    /// decode-step index.
    Decode,
}

/// What a plan describes: a training iteration, a checkpoint/restore
/// state movement, or one unit of serving work (prefill / decode step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// One training iteration (forward/backward/step). Must contain at
    /// least one optimizer step.
    #[default]
    Iteration,
    /// A checkpoint snapshot or restore: pure state movement between
    /// memory tiers. Must move at least one byte of state and must not
    /// contain optimizer steps.
    Checkpoint,
    /// Serving prompt processing for one admitted batch: forward compute
    /// over the prompt tokens, KV-cache writes, and first-token emission.
    /// Must append KV-cache bytes, must contain forward compute, and must
    /// not contain optimizer steps.
    Prefill,
    /// One serving decode step for the running batch: forward compute at
    /// batch width 1-token-per-request over the resident KV cache, one
    /// KV append per request, token emission. Same contract as
    /// [`WorkloadKind::Prefill`]; the `micro` label is the decode-step
    /// index.
    Decode,
}

impl WorkloadKind {
    /// True for the serving kinds ([`WorkloadKind::Prefill`] /
    /// [`WorkloadKind::Decode`]).
    pub fn is_serving(self) -> bool {
        matches!(self, WorkloadKind::Prefill | WorkloadKind::Decode)
    }

    /// The phase stages ops of this kind may carry.
    pub fn allowed_stages(self) -> &'static [PhaseStage] {
        match self {
            WorkloadKind::Iteration => &[
                PhaseStage::Input,
                PhaseStage::Forward,
                PhaseStage::Backward,
                PhaseStage::Step,
            ],
            WorkloadKind::Checkpoint => &[PhaseStage::Checkpoint],
            WorkloadKind::Prefill => &[PhaseStage::Input, PhaseStage::Prefill],
            WorkloadKind::Decode => &[PhaseStage::Input, PhaseStage::Decode],
        }
    }
}

/// Phase label: stage plus the gradient-accumulation micro-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Phase {
    /// Micro-step index (0-based); `Step` ops use the last micro-step.
    pub micro: u32,
    /// Stage within the micro-step.
    pub stage: PhaseStage,
}

impl Phase {
    /// The input phase (before the first micro-step).
    pub const INPUT: Phase = Phase {
        micro: 0,
        stage: PhaseStage::Input,
    };
}

/// Where an optimizer step executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerDevice {
    /// Fused GPU Adam over the rank's shard.
    Gpu(GpuId),
    /// DeepSpeed's CPU Adam on a host socket (ZeRO-Offload/Infinity).
    Cpu(SocketId),
}

/// Element dtypes a [`Codec`] converts between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// 32-bit IEEE float.
    Fp32,
    /// 16-bit IEEE float.
    Fp16,
    /// bfloat16.
    Bf16,
    /// 8-bit block-quantized integer.
    Int8,
    /// 4-bit block-quantized integer (two elements per byte).
    Int4,
}

impl Dtype {
    /// Bytes per element.
    pub fn bytes(self) -> f64 {
        match self {
            Dtype::Fp32 => 4.0,
            Dtype::Fp16 | Dtype::Bf16 => 2.0,
            Dtype::Int8 => 1.0,
            Dtype::Int4 => 0.5,
        }
    }

    /// True for the block-quantized integer dtypes — data already run
    /// through a quantizer, which a second codec must not re-encode.
    pub fn is_quantized(self) -> bool {
        matches!(self, Dtype::Int8 | Dtype::Int4)
    }

    /// Stable lowercase label for diagnostics and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Dtype::Fp32 => "fp32",
            Dtype::Fp16 => "fp16",
            Dtype::Bf16 => "bf16",
            Dtype::Int8 => "int8",
            Dtype::Int4 => "int4",
        }
    }
}

/// A declared on-the-wire codec for one transfer-class op (collective,
/// tier transfer, or volume I/O).
///
/// Semantics: the op's `bytes` field keeps describing the *full-precision
/// payload*; a declared codec states that what actually moves (and lands
/// in the destination pool) is `bytes × ratio`. Decoding back to full
/// precision is an explicit compute op whose label starts with
/// `"dequant"` — the analyzer's ZL008 pass checks that every consumer of
/// quantized bytes sits behind such a decode, and ZL002 checks that every
/// decode has a declared encoder upstream (shrinkage without a codec is
/// a conservation bug, exactly as before).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Codec {
    /// Element dtype entering the encoder (e.g. FP16 weights).
    pub dtype_in: Dtype,
    /// Element dtype on the wire (e.g. INT8 for qwZ, INT4 for qgZ).
    pub dtype_out: Dtype,
    /// Quantization block size in elements (one scale per block). Purely
    /// declarative; ZL008 sanity-checks it, lowering does not use it.
    pub block: usize,
    /// Declared wire-size ratio: encoded bytes = payload bytes × ratio.
    pub ratio: f64,
}

impl Codec {
    /// A block quantizer whose ratio follows from the dtype pair.
    pub fn quantize(dtype_in: Dtype, dtype_out: Dtype, block: usize) -> Codec {
        Codec {
            dtype_in,
            dtype_out,
            block,
            ratio: dtype_out.bytes() / dtype_in.bytes(),
        }
    }

    /// The ratio implied by the dtype pair alone (ZL008 denies codecs
    /// whose declared `ratio` disagrees with this).
    pub fn expected_ratio(&self) -> f64 {
        self.dtype_out.bytes() / self.dtype_in.bytes()
    }

    /// Encoded (on-the-wire / in-pool) size of a `bytes`-sized payload.
    pub fn wire_bytes(&self, bytes: f64) -> f64 {
        bytes * self.ratio
    }

    /// True when the codec shrinks bytes (a quantizer, not an expander).
    pub fn is_narrowing(&self) -> bool {
        self.ratio < 1.0
    }
}

/// One semantic operation of a training iteration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanOp {
    /// The fixed per-iteration framework overhead every chain hangs off.
    Overhead,
    /// One layer's (or fused phase's) GPU compute: a GEMM span plus the
    /// trailing element-wise span, serialized on the GPU. The GEMM span
    /// is duration-jittered at stamping time.
    LayerCompute {
        /// GPU the layer runs on.
        gpu: GpuId,
        /// FLOPs of the span (drives the calibrated kernel-time model).
        flops: f64,
        /// Timeline label (`"gemm"` for the paper's kernels).
        label: &'static str,
    },
    /// A fixed-duration GPU span (e.g. ZeRO-3's per-layer module-hook
    /// "transform" stall). Not jittered.
    FixedCompute {
        /// GPU the span occupies.
        gpu: GpuId,
        /// Busy seconds.
        secs: f64,
        /// Timeline label.
        label: &'static str,
    },
    /// The weight update over `params` parameters.
    OptimizerStep {
        /// Where the update runs.
        device: OptimizerDevice,
        /// Parameters updated by this rank.
        params: f64,
    },
    /// A collective over `group` on a `bytes`-sized buffer, expanded by
    /// lowering via `zerosim-collectives` (ring / hierarchical schedules).
    Collective {
        /// Which collective.
        kind: CollectiveKind,
        /// Participating ranks.
        group: CommGroup,
        /// Buffer size in bytes (payload, not wire volume).
        bytes: f64,
        /// Per-flow inter-node rate ceiling (engine efficiency);
        /// `f64::INFINITY` for raw RDMA-grade NCCL.
        cap: f64,
    },
    /// A point-to-point transfer between memory tiers, routed by the
    /// hardware model at lowering time.
    TierTransfer {
        /// Source tier location.
        src: MemLoc,
        /// Destination tier location.
        dst: MemLoc,
        /// Payload bytes (floored to 1 byte at lowering).
        bytes: f64,
        /// Timeline label (`"h2d"`, `"d2h"`, `"host_prep"`, ...).
        label: &'static str,
        /// Timeline track (GPU resource index by convention).
        track: u32,
    },
    /// A striped read/write against an NVMe volume from `socket`:
    /// lowering emits one transfer per member drive plus a join.
    VolumeIo {
        /// The RAID0-style volume.
        volume: VolumeId,
        /// Socket issuing the I/O.
        socket: SocketId,
        /// Read or write.
        dir: IoDir,
        /// Total bytes across all stripes.
        bytes: f64,
        /// Timeline label (`"nvme_read"` / `"nvme_write"`).
        label: &'static str,
        /// Timeline track.
        track: u32,
    },
    /// A zero-cost join point over its dependencies.
    Barrier,
    /// Appends `bytes` of KV-cache entries on `gpu`'s HBM. Lowered to a
    /// zero-duration marker (the attention cost over the cache already
    /// rides in [`PlanOp::LayerCompute`] FLOPs); its significance is
    /// *residency*: planlint ZL001 accumulates these bytes as a
    /// first-class memory-tier resident growing over decode steps, and
    /// ZL005 treats the append as a legal effect sink (it mutates cache
    /// state subsequent decode steps read).
    KvAppend {
        /// GPU whose HBM holds the cache shard.
        gpu: GpuId,
        /// Bytes appended by this op.
        bytes: f64,
    },
}

/// An op plus its dependencies and phase label.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// The operation.
    pub op: PlanOp,
    /// Ops that must complete first (all strictly earlier in the plan).
    pub deps: Vec<OpId>,
    /// Phase label at emission time.
    pub phase: Phase,
}

/// A typed, structure-invariant description of one unit of work: a
/// training iteration, a checkpoint snapshot, a serving prefill, or a
/// decode step (see [`WorkloadKind`]).
///
/// Built by strategies through [`crate::PlanCtx`]; compiled to a task
/// graph by [`crate::lower::lower`]. Acyclic by construction: deps may
/// only reference previously pushed ops.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadPlan {
    nodes: Vec<PlanNode>,
    phase: Option<Phase>,
    kind: WorkloadKind,
    /// Declared wire codecs, keyed by op index (side table so the op
    /// variants stay codec-agnostic for out-of-tree matchers).
    codecs: BTreeMap<usize, Codec>,
}

/// The historical name of [`WorkloadPlan`], kept as an alias: training
/// call sites read naturally as "iteration plans" and the two names are
/// the same type.
pub type IterPlan = WorkloadPlan;

impl WorkloadPlan {
    /// Creates an empty plan in the [`Phase::INPUT`] phase.
    pub fn new() -> Self {
        WorkloadPlan {
            nodes: Vec::new(),
            phase: Some(Phase::INPUT),
            kind: WorkloadKind::Iteration,
            codecs: BTreeMap::new(),
        }
    }

    /// Creates an empty checkpoint/restore plan. Ops default to the
    /// [`PhaseStage::Checkpoint`] phase; validation requires state
    /// movement instead of an optimizer step.
    pub fn new_checkpoint() -> Self {
        WorkloadPlan {
            nodes: Vec::new(),
            phase: Some(Phase {
                micro: 0,
                stage: PhaseStage::Checkpoint,
            }),
            kind: WorkloadKind::Checkpoint,
            codecs: BTreeMap::new(),
        }
    }

    /// Creates an empty serving-prefill plan in the [`Phase::INPUT`]
    /// phase. Validation requires forward compute plus KV-cache appends
    /// and forbids optimizer steps.
    pub fn new_prefill() -> Self {
        WorkloadPlan {
            nodes: Vec::new(),
            phase: Some(Phase::INPUT),
            kind: WorkloadKind::Prefill,
            codecs: BTreeMap::new(),
        }
    }

    /// Creates an empty serving decode-step plan in the [`Phase::INPUT`]
    /// phase. Same contract as [`WorkloadPlan::new_prefill`]; `micro`
    /// labels carry the decode-step index.
    pub fn new_decode() -> Self {
        WorkloadPlan {
            nodes: Vec::new(),
            phase: Some(Phase::INPUT),
            kind: WorkloadKind::Decode,
            codecs: BTreeMap::new(),
        }
    }

    /// What this plan describes.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Enters a new phase; subsequent ops carry this label.
    pub fn set_phase(&mut self, stage: PhaseStage, micro: u32) {
        self.phase = Some(Phase { micro, stage });
    }

    /// Appends `op` after `deps`.
    ///
    /// # Panics
    /// Panics if a dependency does not precede the new op (plans are
    /// acyclic by construction, mirroring `DagBuilder`).
    pub fn push(&mut self, op: PlanOp, deps: &[OpId]) -> OpId {
        let id = OpId(self.nodes.len());
        for d in deps {
            assert!(d.0 < id.0, "dependency {d:?} does not precede op {id:?}");
        }
        self.nodes.push(PlanNode {
            op,
            deps: deps.to_vec(),
            phase: self.phase.unwrap_or(Phase::INPUT),
        });
        id
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan holds no ops.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in emission (topological) order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The node behind `id`.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this plan.
    pub fn node(&self, id: OpId) -> &PlanNode {
        &self.nodes[id.0]
    }

    /// Declares a wire codec on `id`, which must be a transfer-class op
    /// ([`PlanOp::Collective`] / [`PlanOp::TierTransfer`] /
    /// [`PlanOp::VolumeIo`]; enforced by [`WorkloadPlan::validate`]).
    ///
    /// # Panics
    /// Panics if `id` does not belong to this plan.
    pub fn set_codec(&mut self, id: OpId, codec: Codec) {
        assert!(id.0 < self.nodes.len(), "codec on unknown op {id:?}");
        self.codecs.insert(id.0, codec);
    }

    /// The codec declared on `id`, if any.
    pub fn codec(&self, id: OpId) -> Option<&Codec> {
        self.codecs.get(&id.0)
    }

    /// The codec declared on the op at `index`, if any. Index-based twin
    /// of [`WorkloadPlan::codec`] for passes iterating `nodes()` by
    /// position.
    pub fn codec_at(&self, index: usize) -> Option<&Codec> {
        self.codecs.get(&index)
    }

    /// The wire-size ratio of the op at `index`: the declared codec's
    /// ratio, or 1.0 when the op moves raw bytes.
    pub fn codec_ratio_at(&self, index: usize) -> f64 {
        self.codecs.get(&index).map_or(1.0, |c| c.ratio)
    }

    /// All declared codecs as `(op id, codec)` in op order.
    pub fn codecs(&self) -> impl Iterator<Item = (OpId, &Codec)> {
        self.codecs.iter().map(|(&i, c)| (OpId(i), c))
    }

    /// Removes every codec declaration, leaving the ops untouched — the
    /// "forgot to declare the quantizer" fault planlint's ZL002/ZL008
    /// property tests inject.
    pub fn strip_codecs(&mut self) {
        self.codecs.clear();
    }

    /// Total collective payload bytes (buffer sizes summed, not wire
    /// volume) — the quantity behind the paper's "ZeRO-3 moves 50% more"
    /// claim.
    pub fn collective_payload_bytes(&self) -> f64 {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                PlanOp::Collective { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Total collective wire bytes under the schedules lowering will pick
    /// (closed form; see [`zerosim_collectives::wire_bytes`]). Codec-aware:
    /// a declared codec scales the payload before the schedule prices it.
    pub fn collective_wire_bytes(&self) -> f64 {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.op {
                PlanOp::Collective {
                    kind, group, bytes, ..
                } => Some(wire_bytes(group, *kind, *bytes * self.codec_ratio_at(i))),
                _ => None,
            })
            .sum()
    }

    /// Total bytes staged through host/NVMe tiers (TierTransfer +
    /// VolumeIo payloads).
    pub fn staging_bytes(&self) -> f64 {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                PlanOp::TierTransfer { bytes, .. } | PlanOp::VolumeIo { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Total KV-cache bytes appended ([`PlanOp::KvAppend`] payloads) —
    /// the per-plan residency growth serving drivers and planlint ZL001
    /// account against GPU HBM.
    pub fn kv_append_bytes(&self) -> f64 {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                PlanOp::KvAppend { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Machine-checks the plan against `cluster`:
    ///
    /// * structural acyclicity (every dep precedes its op);
    /// * phase ordering: `Input` ops depend only on `Input` ops, and only
    ///   `Step` ops may depend on `Step` ops (the optimizer is a sink);
    /// * per-kind phase membership: every op's stage must be one of
    ///   [`WorkloadKind::allowed_stages`] for the plan's kind, so training
    ///   plans cannot carry serving stages and vice versa;
    /// * every referenced GPU / socket / volume physically exists, so
    ///   every `TierTransfer` and `VolumeIo` has a resolvable route;
    /// * collective payloads are positive and finite with all ranks on
    ///   the cluster, and their wire volumes obey the ring closed forms
    ///   (all-reduce `2 (n−1)/n · S` per rank; the hierarchical schedule
    ///   never exceeds the flat-ring volume);
    /// * optimizer steps carry positive parameter counts, run in the
    ///   `Step` phase, and at least one exists
    ///   ([`WorkloadKind::Iteration`] plans only);
    /// * [`WorkloadKind::Checkpoint`] plans contain no optimizer step,
    ///   move at least one tier-transfer or volume-I/O payload, and keep
    ///   all ops in the [`PhaseStage::Checkpoint`] phase;
    /// * [`WorkloadKind::Prefill`] / [`WorkloadKind::Decode`] plans
    ///   contain no optimizer step, contain forward compute, and append
    ///   at least one byte of KV cache (residency is the serving
    ///   contract); `KvAppend` ops are serving-only and must run in the
    ///   `Prefill`/`Decode` stage;
    /// * declared codecs sit on transfer-class ops (collective / tier
    ///   transfer / volume I/O) with a finite positive ratio. Deeper
    ///   codec legality (ratio vs. dtypes, decode placement, double
    ///   quantization) is planlint ZL008's domain, so a plan carrying a
    ///   *mis-declared* codec still lowers and lints.
    pub fn validate(&self, cluster: &Cluster) -> Result<(), StrategyError> {
        let spec = cluster.spec();
        let gpu_ok = |g: &GpuId| g.node < spec.nodes && g.gpu < spec.gpus_per_node;
        let socket_ok = |s: &SocketId| s.node < spec.nodes && s.socket < 2;
        let loc_ok = |l: &MemLoc| match l {
            MemLoc::Gpu(g) => gpu_ok(g),
            MemLoc::Cpu(s) => socket_ok(s),
            MemLoc::Nvme(d) => d.node < spec.nodes && d.drive < spec.nvme_layout.len(),
        };
        let err = |i: usize, msg: String| Err(StrategyError::plan(format!("op {i}: {msg}")));

        let mut optimizer_steps = 0usize;
        let mut state_moves = 0usize;
        let mut compute_spans = 0usize;
        let mut kv_appends = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            if !self.kind.allowed_stages().contains(&node.phase.stage) {
                return err(
                    i,
                    format!(
                        "{:?}-plan op in the {:?} phase",
                        self.kind, node.phase.stage
                    ),
                );
            }
            if self.kind != WorkloadKind::Iteration
                && matches!(node.op, PlanOp::OptimizerStep { .. })
            {
                return err(
                    i,
                    format!("{:?} plan contains an optimizer step", self.kind),
                );
            }
            for d in &node.deps {
                if d.0 >= i {
                    return err(i, format!("dependency {} does not precede it", d.0));
                }
                let dep = &self.nodes[d.0];
                if node.phase.stage == PhaseStage::Input && dep.phase.stage != PhaseStage::Input {
                    return err(i, "input-phase op depends on a later phase".into());
                }
                if dep.phase.stage == PhaseStage::Step && node.phase.stage != PhaseStage::Step {
                    return err(i, "non-step op depends on an optimizer-step op".into());
                }
            }
            match &node.op {
                PlanOp::Overhead | PlanOp::Barrier => {}
                PlanOp::LayerCompute { gpu, flops, .. } => {
                    compute_spans += 1;
                    if !gpu_ok(gpu) {
                        return err(i, format!("gpu {gpu:?} not on cluster"));
                    }
                    if !(flops.is_finite() && *flops > 0.0) {
                        return err(i, format!("non-positive flops {flops}"));
                    }
                }
                PlanOp::FixedCompute { gpu, secs, .. } => {
                    if !gpu_ok(gpu) {
                        return err(i, format!("gpu {gpu:?} not on cluster"));
                    }
                    if !(secs.is_finite() && *secs >= 0.0) {
                        return err(i, format!("bad duration {secs}"));
                    }
                }
                PlanOp::OptimizerStep { device, params } => {
                    optimizer_steps += 1;
                    let ok = match device {
                        OptimizerDevice::Gpu(g) => gpu_ok(g),
                        OptimizerDevice::Cpu(s) => socket_ok(s),
                    };
                    if !ok {
                        return err(i, format!("optimizer device {device:?} not on cluster"));
                    }
                    if !(params.is_finite() && *params > 0.0) {
                        return err(i, format!("non-positive params {params}"));
                    }
                    if node.phase.stage != PhaseStage::Step {
                        return err(i, "optimizer step outside the Step phase".into());
                    }
                }
                PlanOp::Collective {
                    kind, group, bytes, ..
                } => {
                    if !(bytes.is_finite() && *bytes > 0.0) {
                        return err(i, format!("non-positive collective bytes {bytes}"));
                    }
                    if let Some(g) = group.ranks().iter().find(|g| !gpu_ok(g)) {
                        return err(i, format!("collective rank {g:?} not on cluster"));
                    }
                    // Conservation: wire volume follows the ring closed
                    // form; the hierarchical schedule may only shrink it.
                    let n = group.len();
                    let flat = n as f64 * kind.bytes_sent_per_rank(n, *bytes);
                    let wire = wire_bytes(group, *kind, *bytes);
                    if wire > flat * (1.0 + 1e-9) {
                        return err(
                            i,
                            format!("wire volume {wire} exceeds flat-ring closed form {flat}"),
                        );
                    }
                    if n > 1 && wire <= 0.0 {
                        return err(i, "multi-rank collective moves no bytes".into());
                    }
                }
                PlanOp::TierTransfer {
                    src, dst, bytes, ..
                } => {
                    if !loc_ok(src) || !loc_ok(dst) {
                        return err(i, format!("no physical route {src:?} -> {dst:?}"));
                    }
                    if !(bytes.is_finite() && *bytes >= 0.0) {
                        return err(i, format!("bad transfer bytes {bytes}"));
                    }
                    if *bytes > 0.0 {
                        state_moves += 1;
                    }
                }
                PlanOp::VolumeIo {
                    volume,
                    socket,
                    bytes,
                    ..
                } => {
                    if !cluster.has_volume(*volume) {
                        return err(i, format!("volume {volume:?} not registered"));
                    }
                    if !socket_ok(socket) {
                        return err(i, format!("socket {socket:?} not on cluster"));
                    }
                    if !(bytes.is_finite() && *bytes >= 0.0) {
                        return err(i, format!("bad volume I/O bytes {bytes}"));
                    }
                    if *bytes > 0.0 {
                        state_moves += 1;
                    }
                }
                PlanOp::KvAppend { gpu, bytes } => {
                    if !gpu_ok(gpu) {
                        return err(i, format!("gpu {gpu:?} not on cluster"));
                    }
                    if !(bytes.is_finite() && *bytes >= 0.0) {
                        return err(i, format!("bad KV-append bytes {bytes}"));
                    }
                    if !matches!(node.phase.stage, PhaseStage::Prefill | PhaseStage::Decode) {
                        return err(i, "KV append outside a serving phase".into());
                    }
                    if *bytes > 0.0 {
                        kv_appends += 1;
                    }
                }
            }
        }
        for (&i, codec) in &self.codecs {
            let Some(node) = self.nodes.get(i) else {
                return Err(StrategyError::plan(format!(
                    "codec declared on unknown op {i}"
                )));
            };
            if !matches!(
                node.op,
                PlanOp::Collective { .. } | PlanOp::TierTransfer { .. } | PlanOp::VolumeIo { .. }
            ) {
                return err(i, "codec declared on a non-transfer op".into());
            }
            if !(codec.ratio.is_finite() && codec.ratio > 0.0) {
                return err(
                    i,
                    format!("codec ratio {} not finite-positive", codec.ratio),
                );
            }
        }
        match self.kind {
            WorkloadKind::Iteration => {
                if optimizer_steps == 0 {
                    return Err(StrategyError::plan(
                        "iteration plan contains no optimizer step",
                    ));
                }
            }
            WorkloadKind::Checkpoint => {
                if state_moves == 0 {
                    return Err(StrategyError::plan("checkpoint plan moves no state"));
                }
            }
            WorkloadKind::Prefill | WorkloadKind::Decode => {
                if compute_spans == 0 {
                    return Err(StrategyError::plan(
                        "serving plan contains no forward compute",
                    ));
                }
                if kv_appends == 0 {
                    return Err(StrategyError::plan(
                        "serving plan appends no KV-cache bytes",
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::default()).unwrap()
    }

    fn gpu0() -> GpuId {
        GpuId { node: 0, gpu: 0 }
    }

    #[test]
    fn minimal_plan_validates() {
        let c = cluster();
        let mut p = IterPlan::new();
        let pro = p.push(PlanOp::Overhead, &[]);
        p.set_phase(PhaseStage::Forward, 0);
        let fwd = p.push(
            PlanOp::LayerCompute {
                gpu: gpu0(),
                flops: 1e12,
                label: "gemm",
            },
            &[pro],
        );
        p.set_phase(PhaseStage::Step, 0);
        p.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(gpu0()),
                params: 1e9,
            },
            &[fwd],
        );
        assert!(p.validate(&c).is_ok());
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn plan_without_optimizer_rejected() {
        let c = cluster();
        let mut p = IterPlan::new();
        p.push(PlanOp::Overhead, &[]);
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("no optimizer step"));
    }

    #[test]
    fn step_phase_is_a_sink() {
        let c = cluster();
        let mut p = IterPlan::new();
        p.set_phase(PhaseStage::Step, 0);
        let opt = p.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(gpu0()),
                params: 1.0,
            },
            &[],
        );
        p.set_phase(PhaseStage::Forward, 0);
        p.push(
            PlanOp::LayerCompute {
                gpu: gpu0(),
                flops: 1.0,
                label: "gemm",
            },
            &[opt],
        );
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("optimizer-step"));
    }

    #[test]
    fn offcluster_gpu_rejected() {
        let c = cluster();
        let mut p = IterPlan::new();
        p.set_phase(PhaseStage::Step, 0);
        p.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(GpuId { node: 9, gpu: 0 }),
                params: 1.0,
            },
            &[],
        );
        assert!(p.validate(&c).is_err());
    }

    #[test]
    fn unregistered_volume_rejected() {
        let c = cluster();
        let mut p = IterPlan::new();
        p.push(
            PlanOp::VolumeIo {
                volume: VolumeId(0),
                socket: SocketId { node: 0, socket: 0 },
                dir: IoDir::Read,
                bytes: 1e6,
                label: "nvme_read",
                track: 0,
            },
            &[],
        );
        p.set_phase(PhaseStage::Step, 0);
        p.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(gpu0()),
                params: 1.0,
            },
            &[],
        );
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("volume"));
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn forward_dependency_panics() {
        let mut p = IterPlan::new();
        p.push(PlanOp::Overhead, &[OpId(3)]);
    }

    #[test]
    fn checkpoint_plan_validates_without_optimizer() {
        let c = cluster();
        let mut p = IterPlan::new_checkpoint();
        assert_eq!(p.kind(), WorkloadKind::Checkpoint);
        let d2h = p.push(
            PlanOp::TierTransfer {
                src: MemLoc::Gpu(gpu0()),
                dst: MemLoc::Cpu(SocketId { node: 0, socket: 0 }),
                bytes: 1e9,
                label: "ckpt_d2h",
                track: 0,
            },
            &[],
        );
        p.push(PlanOp::Barrier, &[d2h]);
        assert!(p.validate(&c).is_ok());
    }

    #[test]
    fn checkpoint_plan_must_move_state() {
        let c = cluster();
        let mut p = IterPlan::new_checkpoint();
        p.push(PlanOp::Barrier, &[]);
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("moves no state"));
    }

    #[test]
    fn checkpoint_plan_rejects_optimizer_step() {
        let c = cluster();
        let mut p = IterPlan::new_checkpoint();
        p.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(gpu0()),
                params: 1.0,
            },
            &[],
        );
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("optimizer step"));
    }

    #[test]
    fn iteration_plan_rejects_checkpoint_phase() {
        let c = cluster();
        let mut p = IterPlan::new();
        p.set_phase(PhaseStage::Checkpoint, 0);
        p.push(PlanOp::Overhead, &[]);
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("Checkpoint phase"));
    }

    fn minimal_serving_plan(kind: WorkloadKind) -> WorkloadPlan {
        let mut p = match kind {
            WorkloadKind::Prefill => WorkloadPlan::new_prefill(),
            _ => WorkloadPlan::new_decode(),
        };
        let stage = if kind == WorkloadKind::Prefill {
            PhaseStage::Prefill
        } else {
            PhaseStage::Decode
        };
        let h2d = p.push(
            PlanOp::TierTransfer {
                src: MemLoc::Cpu(SocketId { node: 0, socket: 0 }),
                dst: MemLoc::Gpu(gpu0()),
                bytes: 4096.0,
                label: "token_h2d",
                track: 0,
            },
            &[],
        );
        p.set_phase(stage, 0);
        let fwd = p.push(
            PlanOp::LayerCompute {
                gpu: gpu0(),
                flops: 1e12,
                label: "gemm",
            },
            &[h2d],
        );
        let kv = p.push(
            PlanOp::KvAppend {
                gpu: gpu0(),
                bytes: 1e6,
            },
            &[fwd],
        );
        p.push(
            PlanOp::TierTransfer {
                src: MemLoc::Gpu(gpu0()),
                dst: MemLoc::Cpu(SocketId { node: 0, socket: 0 }),
                bytes: 64.0,
                label: "token_d2h",
                track: 0,
            },
            &[kv],
        );
        p
    }

    #[test]
    fn prefill_and_decode_plans_validate() {
        let c = cluster();
        for kind in [WorkloadKind::Prefill, WorkloadKind::Decode] {
            let p = minimal_serving_plan(kind);
            assert_eq!(p.kind(), kind);
            assert!(kind.is_serving());
            assert!(p.validate(&c).is_ok(), "{kind:?}");
            assert_eq!(p.kv_append_bytes(), 1e6);
        }
    }

    #[test]
    fn serving_plan_rejects_optimizer_step() {
        let c = cluster();
        let mut p = minimal_serving_plan(WorkloadKind::Decode);
        p.set_phase(PhaseStage::Decode, 0);
        p.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(gpu0()),
                params: 1.0,
            },
            &[],
        );
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("optimizer step"));
    }

    #[test]
    fn serving_plan_must_append_kv_cache() {
        let c = cluster();
        let mut p = WorkloadPlan::new_prefill();
        p.set_phase(PhaseStage::Prefill, 0);
        p.push(
            PlanOp::LayerCompute {
                gpu: gpu0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("KV-cache"));
    }

    #[test]
    fn serving_plan_rejects_training_stages() {
        let c = cluster();
        let mut p = minimal_serving_plan(WorkloadKind::Prefill);
        p.set_phase(PhaseStage::Backward, 0);
        p.push(PlanOp::Overhead, &[]);
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("Backward"));
    }

    #[test]
    fn iteration_plan_rejects_kv_append() {
        let c = cluster();
        let mut p = IterPlan::new();
        p.set_phase(PhaseStage::Forward, 0);
        p.push(
            PlanOp::KvAppend {
                gpu: gpu0(),
                bytes: 1e6,
            },
            &[],
        );
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("serving phase"));
    }

    #[test]
    fn codec_roundtrip_and_strip() {
        let c = cluster();
        let mut p = IterPlan::new();
        p.set_phase(PhaseStage::Forward, 0);
        let coll = p.push(
            PlanOp::Collective {
                kind: zerosim_collectives::CollectiveKind::AllGather,
                group: CommGroup::new(vec![GpuId { node: 0, gpu: 0 }, GpuId { node: 0, gpu: 1 }]),
                bytes: 1e6,
                cap: f64::INFINITY,
            },
            &[],
        );
        p.set_phase(PhaseStage::Step, 0);
        p.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(gpu0()),
                params: 1.0,
            },
            &[coll],
        );
        let plain_wire = p.collective_wire_bytes();
        let codec = Codec::quantize(Dtype::Fp16, Dtype::Int8, 2048);
        assert_eq!(codec.ratio, 0.5);
        assert!(codec.is_narrowing());
        p.set_codec(coll, codec);
        assert!(p.validate(&c).is_ok());
        assert_eq!(p.codec(coll).unwrap().dtype_out, Dtype::Int8);
        assert_eq!(p.codec_ratio_at(coll.index()), 0.5);
        assert_eq!(p.codecs().count(), 1);
        // Halving the payload halves the scheduled wire volume.
        assert!((p.collective_wire_bytes() - plain_wire * 0.5).abs() < 1.0);
        p.strip_codecs();
        assert!(p.codec(coll).is_none());
        assert_eq!(p.collective_wire_bytes(), plain_wire);
    }

    #[test]
    fn codec_on_compute_op_rejected() {
        let c = cluster();
        let mut p = IterPlan::new();
        p.set_phase(PhaseStage::Forward, 0);
        let fwd = p.push(
            PlanOp::LayerCompute {
                gpu: gpu0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        p.set_phase(PhaseStage::Step, 0);
        p.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(gpu0()),
                params: 1.0,
            },
            &[fwd],
        );
        p.set_codec(fwd, Codec::quantize(Dtype::Fp16, Dtype::Int8, 64));
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("non-transfer"));
    }

    #[test]
    fn non_finite_codec_ratio_rejected() {
        let c = cluster();
        let mut p = minimal_serving_plan(WorkloadKind::Prefill);
        let mut codec = Codec::quantize(Dtype::Fp16, Dtype::Int4, 128);
        codec.ratio = f64::NAN;
        p.set_codec(OpId(0), codec);
        let e = p.validate(&c).unwrap_err();
        assert!(e.to_string().contains("finite-positive"));
    }

    #[test]
    fn decode_plan_orders_micro_as_decode_step() {
        let c = cluster();
        let mut p = minimal_serving_plan(WorkloadKind::Decode);
        // A second decode step rides in the same plan as micro=1.
        p.set_phase(PhaseStage::Decode, 1);
        let fwd = p.push(
            PlanOp::LayerCompute {
                gpu: gpu0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        p.push(
            PlanOp::KvAppend {
                gpu: gpu0(),
                bytes: 2e6,
            },
            &[fwd],
        );
        assert!(p.validate(&c).is_ok());
        assert_eq!(p.kv_append_bytes(), 3e6);
    }
}
