//! The in-tree passes, one module per artifact-layer analysis.

mod bandwidth;
mod conservation;
mod dag;
mod faults;
mod memory;
mod ordering;

pub use bandwidth::BandwidthFeasibilityPass;
pub use conservation::ByteConservationPass;
pub use dag::{DagCyclePass, DeadOpsPass};
pub use faults::FaultSchedulePass;
pub use memory::MemoryResidencyPass;
pub use ordering::PhaseOrderingPass;

use crate::pass::Pass;

/// Every in-tree pass (ZL001–ZL007), in code order.
pub(crate) fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(MemoryResidencyPass),
        Box::new(ByteConservationPass),
        Box::new(PhaseOrderingPass),
        Box::new(BandwidthFeasibilityPass),
        Box::new(DeadOpsPass),
        Box::new(DagCyclePass),
        Box::new(FaultSchedulePass),
    ]
}
