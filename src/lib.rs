//! ZeroSim — a flow-level simulator of distributed LLM training that
//! reproduces the ISPASS'24 study *"Bandwidth Characterization of DeepSpeed
//! on Distributed Large Language Model Training"*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`simkit`] — discrete-event kernel: flow network, DAG engine, recorders;
//! * [`hw`] — the simulated two-node XE8545 cluster and its interconnects;
//! * [`model`] — GPT-2-like workload math (params, FLOPs, memory states);
//! * [`collectives`] — NCCL-like ring/hierarchical collectives;
//! * [`strategies`] — DDP, Megatron-LM, ZeRO-1/2/3, ZeRO-Offload, ZeRO-Infinity;
//! * [`core`] — the characterization engine (throughput, bandwidth, memory,
//!   timelines) and capacity search;
//! * [`perftest`] — RoCE latency and bandwidth stress tests;
//! * [`report`] — tables, terminal charts, paper-style number formats.
//!
//! # Quickstart
//!
//! ```
//! use zerosim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = TrainingSim::new(ClusterSpec::default())?;
//! let report = sim.run(
//!     &Strategy::Zero { stage: ZeroStage::Two },
//!     &GptConfig::paper_model_with_params(1.4),
//!     &TrainOptions::single_node(),
//!     &RunConfig::quick(),
//! )?;
//! println!("{:.0} TFLOP/s", report.throughput_tflops());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use zerosim_collectives as collectives;
pub use zerosim_core as core;
pub use zerosim_hw as hw;
pub use zerosim_model as model;
pub use zerosim_perftest as perftest;
pub use zerosim_report as report;
pub use zerosim_simkit as simkit;
pub use zerosim_strategies as strategies;

/// The types most programs need, in one import.
pub mod prelude {
    pub use zerosim_core::{
        max_model_size, CapacityResult, CoreError, RunConfig, TrainingReport, TrainingSim,
    };
    pub use zerosim_hw::{Cluster, ClusterSpec, GpuId, LinkClass, MemLoc, NvmeId, SocketId};
    pub use zerosim_model::GptConfig;
    pub use zerosim_strategies::{
        Calibration, InfinityPlacement, MemoryPlan, Strategy, TrainOptions, ZeroStage,
    };
}
