//! Mixed-precision model-state and activation memory accounting.
//!
//! With FP16 training and Adam, the model states per parameter are (ZeRO
//! paper / Sec. II-C):
//!
//! * 2 bytes FP16 parameters,
//! * 2 bytes FP16 gradients,
//! * 12 bytes FP32 optimizer state (master copy, momentum, variance).
//!
//! ZeRO stages partition these across the data-parallel degree; Megatron
//! tensor/pipeline parallelism slices all of them by the model-parallel
//! degree. This module provides the raw byte quantities; the `strategies`
//! crate applies partitioning.

use crate::config::GptConfig;

/// Bytes per parameter in FP16.
pub const FP16_BYTES: f64 = 2.0;
/// Bytes per parameter for FP32 Adam optimizer state (master + m + v).
pub const ADAM_FP32_BYTES: f64 = 12.0;

/// Model-state byte totals for the *whole* (unpartitioned) model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelStates {
    /// FP16 parameter bytes (2 P).
    pub params: f64,
    /// FP16 gradient bytes (2 P).
    pub grads: f64,
    /// FP32 optimizer-state bytes (12 P).
    pub optimizer: f64,
}

impl ModelStates {
    /// Computes states for a model with `num_params` parameters.
    pub fn for_params(num_params: f64) -> Self {
        ModelStates {
            params: FP16_BYTES * num_params,
            grads: FP16_BYTES * num_params,
            optimizer: ADAM_FP32_BYTES * num_params,
        }
    }

    /// Total bytes (the classic 16 P).
    pub fn total(&self) -> f64 {
        self.params + self.grads + self.optimizer
    }
}

impl GptConfig {
    /// Model states for this configuration.
    pub fn model_states(&self) -> ModelStates {
        ModelStates::for_params(self.num_params())
    }

    /// Activation memory per GPU in bytes, assuming activation
    /// checkpointing at layer boundaries (the Megatron/DeepSpeed default
    /// for the paper's model sizes).
    ///
    /// Stored: the layer-boundary activations (`s·b·h` FP16 values per
    /// layer) plus a working set for the layer being recomputed, folded
    /// into the `ACT_COEFF` calibration constant.
    pub fn activation_bytes(&self, per_gpu_batch: usize) -> f64 {
        /// Effective FP16 values stored per (layer, token, hidden-unit),
        /// calibrated so PyTorch DDP tops out at the paper's 1.4 B model on
        /// a 40 GB A100 (Fig. 6-a).
        const ACT_COEFF: f64 = 3.0;
        let s = self.seq_len as f64;
        let b = per_gpu_batch as f64;
        let h = self.hidden_size as f64;
        let l = self.num_layers as f64;
        ACT_COEFF * l * s * b * h * FP16_BYTES
    }
}

/// Fixed per-GPU memory overhead that does not scale with the model: CUDA
/// context, framework allocator slack, cuBLAS/NCCL workspaces. Calibrated
/// jointly with [`GptConfig::activation_bytes`].
pub const GPU_FIXED_OVERHEAD_BYTES: f64 = 4.0e9;

// JSON codec (in-house serde replacement; see crates/testkit).
zerosim_testkit::impl_json! {
    struct ModelStates { params, grads, optimizer }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_bytes_per_param() {
        let s = ModelStates::for_params(1e9);
        assert_eq!(s.params, 2e9);
        assert_eq!(s.grads, 2e9);
        assert_eq!(s.optimizer, 12e9);
        assert_eq!(s.total(), 16e9);
    }

    #[test]
    fn ddp_capacity_matches_paper() {
        // The paper's DDP tops out at 1.4 B params on a 40 GB A100
        // (Fig. 6-a): the 26-layer model must fit, the next size (2.9 B)
        // must not.
        let fits = |layers: usize| {
            let c = GptConfig::paper_model(layers);
            let need = c.model_states().total() + c.activation_bytes(16) + GPU_FIXED_OVERHEAD_BYTES;
            need <= 40e9
        };
        assert!(fits(26), "1.4B model should fit under DDP");
        assert!(!fits(55), "2.9B model should not fit under DDP");
    }

    #[test]
    fn activations_scale_with_batch_and_layers() {
        let c = GptConfig::default();
        assert_eq!(c.activation_bytes(32), 2.0 * c.activation_bytes(16));
        let deeper = GptConfig::paper_model(52);
        assert_eq!(deeper.activation_bytes(16), 2.0 * c.activation_bytes(16));
    }
}
