//! `planlint` — static analysis (lint) over strategy iteration plans,
//! lowered DAGs, and memory plans, before any simulated flow runs.
//!
//! Usage:
//!
//! ```text
//! planlint [--json] [--level CODE=LEVEL]... [--nodes N | --topology SPEC] golden
//! planlint [--json] [--level CODE=LEVEL]... [--nodes N | --topology SPEC] <strategy>...
//! planlint list
//! planlint zl008-selfcheck
//! planlint --bench FILE
//! ```
//!
//! * `golden` lints the paper's full strategy matrix (the 12 golden
//!   configurations `repro`/`verify.sh` reproduce), each on its paper
//!   cluster shape.
//! * `<strategy>...` lints named registry strategies (see `planlint
//!   list`) on a `--nodes N` cluster (default 1; NVMe strategies get a
//!   two-drive volume on node 0, as in the paper).
//! * `--topology SPEC` lints named strategies against a generated
//!   topology instead — `paper`, `flat:<nodes>`,
//!   `fat-tree:<racks>x<nodes_per_rack>:<oversub>`, or
//!   `pods:<pods>x<islands>x<gpus>:<pod>:<spine>` — spanning all its
//!   nodes (overrides `--nodes`).
//! * `--level ZLxxx=allow|warn|deny` overrides a lint's level.
//! * `zl008-selfcheck` seeds a deliberately illegal codec plan and
//!   verifies ZL008 catches it, exiting 2 with the ZL008 findings — the
//!   verify.sh gate asserts that exact exit code, so a silent analyzer
//!   regression cannot masquerade as a clean run.
//! * `--bench FILE` writes ZL009 static step-time bounds next to the
//!   simulated iteration times (seeds 0/1/7/42) for every golden and
//!   ZeRO++ config into FILE, with an `all_bounds_hold` verdict.
//!
//! Exit status: 0 when no deny-level findings, 1 when any config has
//! deny findings, 2 on usage errors (and, deliberately, for the caught
//! `zl008-selfcheck` violation).
//!
//! JSON output is versioned: the top level is an object with a
//! `schema_version` field and the per-config reports under `configs`.

use zerosim_analyzer::{analyze_strategy, AnalysisReport, Artifacts, LintConfig, PassManager};
use zerosim_collectives::{CollectiveKind, CommGroup};
use zerosim_core::{RunConfig, TrainingSim};
use zerosim_hw::{Cluster, ClusterSpec, GpuId, NvmeId, TopologySpec};
use zerosim_model::GptConfig;
use zerosim_strategies::{
    Calibration, Codec, Dtype, InfinityPlacement, IterPlan, PhaseStage, PlanOp, Strategy,
    StrategyRegistry, TrainOptions, ZeroStage,
};
use zerosim_testkit::json::Json;

/// Version of the `--json` (and `--bench`) output shape. Bump on any
/// structural change so downstream tooling can pin what it parses.
const SCHEMA_VERSION: f64 = 2.0;

/// Jitter seeds the `--bench` mode simulates each config under.
const BENCH_SEEDS: [u64; 4] = [0, 1, 7, 42];

/// One lintable configuration: a strategy on a concrete cluster shape.
struct Case {
    label: String,
    cluster: Cluster,
    strategy: Strategy,
    opts: TrainOptions,
}

fn cluster_with_nodes(nodes: usize) -> Cluster {
    Cluster::new(ClusterSpec::default().with_nodes(nodes)).expect("paper cluster spec is valid")
}

fn opts_for(nodes: usize) -> TrainOptions {
    TrainOptions::for_nodes(nodes)
}

/// Attaches the paper's two-drive NVMe volume (node 0, drives 0 and 1)
/// and returns the ZeRO-Infinity strategy striped over it.
fn infinity_on(cluster: &mut Cluster, offload_params: bool) -> Strategy {
    let vol = cluster
        .try_create_volume(vec![
            NvmeId { node: 0, drive: 0 },
            NvmeId { node: 0, drive: 1 },
        ])
        .expect("default spec has two NVMe drives on node 0");
    Strategy::ZeroInfinity {
        offload_params,
        placement: InfinityPlacement::new(vec![vol]),
    }
}

/// The paper's golden strategy matrix: every `(strategy, nodes)` pair the
/// reproduction harness characterizes, plus the ZeRO-Infinity NVMe config.
fn golden_cases() -> Vec<Case> {
    let matrix: Vec<(Strategy, usize)> = vec![
        (Strategy::Ddp, 1),
        (Strategy::Ddp, 2),
        (Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (Strategy::Megatron { tp: 8, pp: 1 }, 2),
        (Strategy::Megatron { tp: 4, pp: 2 }, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::One,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: true,
            },
            1,
        ),
    ];
    let mut cases: Vec<Case> = matrix
        .into_iter()
        .map(|(strategy, nodes)| Case {
            label: format!("{} @ {nodes} node(s)", strategy.name()),
            cluster: cluster_with_nodes(nodes),
            strategy,
            opts: opts_for(nodes),
        })
        .collect();
    let mut cluster = cluster_with_nodes(1);
    let strategy = infinity_on(&mut cluster, true);
    cases.push(Case {
        label: format!("{} @ 1 node(s)", strategy.name()),
        cluster,
        strategy,
        opts: opts_for(1),
    });
    cases
}

/// The three ZeRO++ strategies on the paper's dual-node testbed — the
/// configurations whose codec-aware accounting this linter exists to
/// check.
fn zeropp_cases() -> Vec<Case> {
    [Strategy::qwz(), Strategy::hpz(), Strategy::qgz()]
        .into_iter()
        .map(|strategy| Case {
            label: format!("{} @ 2 node(s)", strategy.name()),
            cluster: cluster_with_nodes(2),
            strategy,
            opts: opts_for(2),
        })
        .collect()
}

/// Every strategy `planlint` can lint by name: the paper registry plus
/// the Megatron shape variants and the NVMe configs the registry leaves
/// to per-run setup.
fn lintable_names() -> Vec<String> {
    let mut names: Vec<String> = StrategyRegistry::paper()
        .with_zeropp()
        .names()
        .into_iter()
        .map(str::to_string)
        .collect();
    for extra in [
        Strategy::Megatron { tp: 8, pp: 1 }.name(),
        Strategy::Megatron { tp: 4, pp: 2 }.name(),
        "ZeRO-Infinity (NVME opt)".to_string(),
        "ZeRO-Infinity (NVME opt+param)".to_string(),
    ] {
        if !names.contains(&extra) {
            names.push(extra);
        }
    }
    names
}

/// A named strategy on a `--nodes N` cluster or a `--topology` generated
/// cluster. NVMe strategies get the paper's two-drive volume registered
/// on the cluster first.
fn named_case(name: &str, nodes: usize, topology: Option<&TopologySpec>) -> Option<Case> {
    let (mut cluster, nodes) = match topology {
        Some(t) => {
            let spec = t.build().expect("parsed topology builds");
            (
                Cluster::new(spec).expect("generated topology lowers to a cluster"),
                t.nodes(),
            )
        }
        None => (cluster_with_nodes(nodes), nodes),
    };
    let candidates = [
        Strategy::Ddp,
        Strategy::Megatron { tp: 4, pp: 1 },
        Strategy::Megatron { tp: 8, pp: 1 },
        Strategy::Megatron { tp: 4, pp: 2 },
        Strategy::Zero {
            stage: ZeroStage::One,
        },
        Strategy::Zero {
            stage: ZeroStage::Two,
        },
        Strategy::Zero {
            stage: ZeroStage::Three,
        },
        Strategy::ZeroOffload {
            stage: ZeroStage::Two,
            offload_params: false,
        },
        Strategy::ZeroOffload {
            stage: ZeroStage::Three,
            offload_params: true,
        },
        Strategy::qwz(),
        Strategy::hpz(),
        Strategy::qgz(),
    ];
    let strategy = match name {
        "ZeRO-Infinity (NVME opt)" => infinity_on(&mut cluster, false),
        "ZeRO-Infinity (NVME opt+param)" => infinity_on(&mut cluster, true),
        _ => candidates.iter().find(|s| s.name() == name)?.clone(),
    };
    Some(Case {
        label: format!("{name} @ {nodes} node(s)"),
        cluster,
        strategy,
        opts: opts_for(nodes),
    })
}

fn lint(case: &Case, config: LintConfig) -> Result<AnalysisReport, String> {
    analyze_strategy(
        &case.cluster,
        &case.strategy,
        &GptConfig::paper_model_with_params(1.4),
        &case.opts,
        &Calibration::default(),
        config,
    )
    .map_err(|e| e.to_string())
}

/// Assembles the versioned `--json` document from per-config reports.
fn render_json(results: &[(String, AnalysisReport)]) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(SCHEMA_VERSION)),
        (
            "configs".into(),
            Json::Arr(
                results
                    .iter()
                    .map(|(label, report)| {
                        Json::Obj(vec![
                            ("config".into(), Json::Str(label.clone())),
                            ("report".into(), report.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Builds a deliberately illegal codec plan: a quantized all-gather
/// whose declared ratio contradicts its dtype pair, feeding compute with
/// no decode in between. ZL008 must deny both.
fn seeded_codec_violation() -> IterPlan {
    let mut plan = IterPlan::new();
    plan.set_phase(PhaseStage::Forward, 0);
    let g0 = GpuId { node: 0, gpu: 0 };
    let g1 = GpuId { node: 0, gpu: 1 };
    let gather = plan.push(
        PlanOp::Collective {
            kind: CollectiveKind::AllGather,
            group: CommGroup::new(vec![g0, g1]),
            bytes: 1e9,
            cap: f64::INFINITY,
        },
        &[],
    );
    let mut codec = Codec::quantize(Dtype::Fp16, Dtype::Int8, 2048);
    codec.ratio = 0.25; // contradicts Fp16 -> Int8 (0.5)
    plan.set_codec(gather, codec);
    plan.push(
        PlanOp::LayerCompute {
            gpu: g0,
            flops: 1e12,
            label: "gemm",
        },
        &[gather],
    );
    plan
}

/// `zl008-selfcheck`: exits 2 when ZL008 catches the seeded violation.
fn zl008_selfcheck() -> ! {
    let cluster = cluster_with_nodes(1);
    let plan = seeded_codec_violation();
    let pm = PassManager::with_default_passes(LintConfig::new());
    let report = pm.run(&Artifacts::new(&cluster).with_plan(&plan));
    let zl008_denies = report
        .with_code(zerosim_analyzer::LintCode::CodecLegality)
        .len();
    if zl008_denies > 0 && !report.is_clean() {
        print!("{}", report.render_text());
        eprintln!("zl008-selfcheck: seeded codec violation caught ({zl008_denies} ZL008 findings)");
        std::process::exit(2);
    }
    eprintln!("zl008-selfcheck: FAILED — seeded codec violation was not caught");
    std::process::exit(1);
}

/// `--bench FILE`: for every golden and ZeRO++ config, emit the ZL009
/// static bounds next to simulated iteration times at each bench seed.
fn bench_bounds(path: &str) -> ! {
    let mut cases = golden_cases();
    cases.extend(zeropp_cases());
    let mut rows: Vec<Json> = Vec::new();
    let mut all_hold = true;
    for case in &cases {
        let report = match lint(case, LintConfig::new()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: cannot plan/lower: {e}", case.label);
                std::process::exit(1);
            }
        };
        let Some(bound) = report.bound.clone() else {
            eprintln!("{}: ZL009 emitted no bound", case.label);
            std::process::exit(1);
        };
        let mut sims: Vec<f64> = Vec::new();
        let mut holds = true;
        for seed in BENCH_SEEDS {
            let mut sim = match TrainingSim::new(case.cluster.spec().clone()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{}: cannot build sim: {e}", case.label);
                    std::process::exit(1);
                }
            };
            let strategy = match &case.strategy {
                // The NVMe volume lives on the case's cluster; recreate
                // it on the sim's own cluster (same drives, same id).
                Strategy::ZeroInfinity { offload_params, .. } => {
                    let vol = sim.cluster_mut().create_volume(vec![
                        NvmeId { node: 0, drive: 0 },
                        NvmeId { node: 0, drive: 1 },
                    ]);
                    Strategy::ZeroInfinity {
                        offload_params: *offload_params,
                        placement: InfinityPlacement::new(vec![vol]),
                    }
                }
                s => s.clone(),
            };
            let opts = case.opts.with_jitter_seed(seed);
            let model = GptConfig::paper_model_with_params(1.4);
            match sim.run(&strategy, &model, &opts, &RunConfig::quick()) {
                Ok(r) => {
                    let t = r.iter_time.as_secs();
                    holds &= bound.protocol_s <= t * (1.0 + 1e-9);
                    sims.push(t);
                }
                Err(e) => {
                    eprintln!("{} seed {seed}: sim failed: {e}", case.label);
                    std::process::exit(1);
                }
            }
        }
        all_hold &= holds;
        println!(
            "[{}] {}: bound {:.4}s (wire SoL {:.4}s) vs sim {:.4}-{:.4}s",
            if holds { "ok" } else { "VIOLATED" },
            case.label,
            bound.protocol_s,
            bound.wire_sol_s,
            sims.iter().fold(f64::INFINITY, |a, b| a.min(*b)),
            sims.iter().fold(0.0_f64, |a, b| a.max(*b)),
        );
        rows.push(Json::Obj(vec![
            ("config".into(), Json::Str(case.label.clone())),
            ("protocol_bound_s".into(), Json::Num(bound.protocol_s)),
            ("wire_sol_s".into(), Json::Num(bound.wire_sol_s)),
            (
                "sim_iter_s".into(),
                Json::Arr(sims.iter().map(|t| Json::Num(*t)).collect()),
            ),
            ("holds".into(), Json::Bool(holds)),
        ]));
    }
    let doc = Json::Obj(vec![
        ("schema_version".into(), Json::Num(SCHEMA_VERSION)),
        (
            "seeds".into(),
            Json::Arr(
                BENCH_SEEDS
                    .iter()
                    .map(|s| {
                        #[allow(clippy::cast_precision_loss)]
                        Json::Num(*s as f64)
                    })
                    .collect(),
            ),
        ),
        ("configs".into(), Json::Arr(rows)),
        ("all_bounds_hold".into(), Json::Bool(all_hold)),
    ]);
    if let Err(e) = std::fs::write(path, doc.render() + "\n") {
        eprintln!("--bench: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path} (all_bounds_hold: {all_hold})");
    std::process::exit(i32::from(!all_hold));
}

fn usage() -> ! {
    eprintln!(
        "usage: planlint [--json] [--level CODE=LEVEL]... [--nodes N | --topology SPEC] \
         golden|<strategy>..."
    );
    eprintln!("       planlint list");
    eprintln!("strategies: {}", lintable_names().join(", "));
    eprintln!(
        "topologies: paper | flat:<nodes> | fat-tree:<racks>x<npr>:<over> | \
         pods:<pods>x<islands>x<gpus>:<pod>:<spine>"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "zl008-selfcheck") {
        zl008_selfcheck();
    }
    if let Some(pos) = args.iter().position(|a| a == "--bench") {
        if pos + 1 >= args.len() {
            eprintln!("--bench needs an output file path");
            std::process::exit(2);
        }
        let path = args[pos + 1].clone();
        bench_bounds(&path);
    }
    let mut json = false;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        json = true;
    }
    let mut config = LintConfig::new();
    while let Some(pos) = args.iter().position(|a| a == "--level") {
        if pos + 1 >= args.len() {
            eprintln!("--level needs a CODE=LEVEL argument");
            std::process::exit(2);
        }
        let directive = args.remove(pos + 1);
        args.remove(pos);
        if let Err(e) = config.apply_directive(&directive) {
            eprintln!("--level {directive}: {e}");
            std::process::exit(2);
        }
    }
    let mut nodes = 1usize;
    if let Some(pos) = args.iter().position(|a| a == "--nodes") {
        if pos + 1 >= args.len() {
            eprintln!("--nodes needs a node count");
            std::process::exit(2);
        }
        let raw = args.remove(pos + 1);
        args.remove(pos);
        nodes = match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--nodes: expected a positive integer, got {raw:?}");
                std::process::exit(2);
            }
        };
    }
    let mut topology: Option<TopologySpec> = None;
    if let Some(pos) = args.iter().position(|a| a == "--topology") {
        if pos + 1 >= args.len() {
            eprintln!("--topology needs a topology spec");
            std::process::exit(2);
        }
        let raw = args.remove(pos + 1);
        args.remove(pos);
        topology = match TopologySpec::parse(&raw) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("--topology {raw}: {e}");
                std::process::exit(2);
            }
        };
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    if args.iter().any(|a| a == "list") {
        for name in lintable_names() {
            println!("{name}");
        }
        return;
    }

    let cases: Vec<Case> = if args.iter().any(|a| a == "golden") {
        if topology.is_some() {
            eprintln!("--topology applies to named strategies; `golden` pins the paper shapes");
            std::process::exit(2);
        }
        golden_cases()
    } else {
        args.iter()
            .map(|name| {
                named_case(name, nodes, topology.as_ref()).unwrap_or_else(|| {
                    eprintln!("unknown strategy {name:?}; run `planlint list`");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let mut denies = 0usize;
    let mut out: Vec<(String, AnalysisReport)> = Vec::new();
    for case in &cases {
        let report = match lint(case, config.clone()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: cannot plan/lower: {e}", case.label);
                std::process::exit(1);
            }
        };
        denies += report.deny_count();
        if json {
            out.push((case.label.clone(), report));
        } else {
            let status = if report.deny_count() > 0 {
                "DENY"
            } else if report.warning_count() > 0 {
                "warn"
            } else {
                "ok"
            };
            println!("[{status:>4}] {}", case.label);
            let text = report.render_text();
            if !text.is_empty() {
                for line in text.lines() {
                    println!("       {line}");
                }
            }
        }
    }
    if json {
        println!("{}", render_json(&out).render());
    }
    if denies > 0 {
        eprintln!("planlint: {denies} deny-level finding(s)");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(obj: &Json) -> Vec<&str> {
        match obj {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            other => panic!("expected an object, got {}", other.render()),
        }
    }

    fn field<'a>(obj: &'a Json, name: &str) -> &'a Json {
        match obj {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing field {name:?} in {}", obj.render())),
            other => panic!("expected an object, got {}", other.render()),
        }
    }

    /// Pins the `--json` document shape downstream tooling parses:
    /// `schema_version` at the top level, then one `{config, report}`
    /// entry per linted config, the report keeping its stable keys
    /// (including the ZL009 `bound` verdict). Structural changes must
    /// show up here *and* bump `SCHEMA_VERSION`.
    #[test]
    fn json_document_shape_is_pinned() {
        let case = &golden_cases()[0];
        let report = lint(case, LintConfig::new()).expect("golden config lints");
        let doc = render_json(&[(case.label.clone(), report)]);

        assert_eq!(keys(&doc), ["schema_version", "configs"]);
        match field(&doc, "schema_version") {
            Json::Num(v) => assert!((*v - SCHEMA_VERSION).abs() < f64::EPSILON),
            other => panic!("schema_version must be a number, got {}", other.render()),
        }
        let Json::Arr(configs) = field(&doc, "configs") else {
            panic!("configs must be an array");
        };
        assert_eq!(configs.len(), 1);
        assert_eq!(keys(&configs[0]), ["config", "report"]);
        assert!(matches!(field(&configs[0], "config"), Json::Str(_)));

        let report = field(&configs[0], "report");
        assert_eq!(
            keys(report),
            [
                "diagnostics",
                "deny",
                "warnings",
                "notes",
                "suppressed",
                "memory",
                "links",
                "bound"
            ]
        );
        // A lowered golden config always carries the ZL009 verdict with
        // its stable keys.
        let bound = field(report, "bound");
        assert_eq!(
            keys(bound),
            [
                "wire_sol_s",
                "protocol_s",
                "critical_tasks",
                "transfer_s",
                "compute_s"
            ]
        );
        // The serialized document round-trips through the renderer
        // without structural surprises (stable key order).
        let rendered = doc.render();
        assert!(rendered.starts_with("{\"schema_version\":2"), "{rendered}");
    }
}
