//! Terminal charts: sparklines for utilization patterns, horizontal bars
//! for figure panels, scatter plots for trade-off figures.

const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `series` as a one-line sparkline scaled to `max` (auto when
/// `None`). Empty input renders an empty string.
///
/// ```
/// use zerosim_report::sparkline;
/// let s = sparkline(&[0.0, 0.5, 1.0], None);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(series: &[f64], max: Option<f64>) -> String {
    if series.is_empty() {
        return String::new();
    }
    let top = max
        .unwrap_or_else(|| series.iter().cloned().fold(0.0, f64::max))
        .max(f64::MIN_POSITIVE);
    series
        .iter()
        .map(|v| {
            // Clamped to [0, 7]: exact as usize.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let idx = ((v / top) * 8.0).floor().clamp(0.0, 7.0) as usize;
            BLOCKS[idx]
        })
        .collect()
}

/// Downsamples `series` to at most `width` points by averaging runs,
/// preserving the overall shape for terminal display.
pub fn downsample(series: &[f64], width: usize) -> Vec<f64> {
    if width == 0 || series.is_empty() || series.len() <= width {
        return series.to_vec();
    }
    let chunk = series.len() as f64 / width as f64;
    (0..width)
        .map(|i| {
            // Chunk boundaries are bounded by series.len(): exact as usize.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let lo = (i as f64 * chunk) as usize;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let hi = (((i + 1) as f64 * chunk) as usize)
                .min(series.len())
                .max(lo + 1);
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Renders labelled horizontal bars, scaled to the maximum value.
///
/// ```
/// use zerosim_report::bar_chart;
/// let s = bar_chart(&[("DDP", 438.0), ("ZeRO-2", 524.0)], 20, "TFLOP/s");
/// assert!(s.contains("DDP"));
/// assert!(s.contains("524.0"));
/// ```
pub fn bar_chart(items: &[(&str, f64)], width: usize, unit: &str) -> String {
    if items.is_empty() {
        return String::new();
    }
    let label_w = items
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let max = items
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for (label, value) in items {
        // value/max in [0,1], so bars <= width: exact as usize.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let bars = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} |{}{} {value:.1} {unit}\n",
            "█".repeat(bars),
            " ".repeat(width - bars.min(width)),
        ));
    }
    out
}

/// Renders an (x, y) scatter with point labels, for trade-off plots like
/// Fig. 8 (model size vs throughput).
pub fn scatter(points: &[(f64, f64, &str)], width: usize, height: usize) -> String {
    if points.is_empty() || width < 2 || height < 2 {
        return String::new();
    }
    let xmax = points
        .iter()
        .map(|p| p.0)
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    let ymax = points
        .iter()
        .map(|p| p.1)
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; width]; height];
    let mut legend = String::new();
    for (i, (x, y, label)) in points.iter().enumerate() {
        // Normalized coordinates land inside the grid: exact as usize.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cx = ((x / xmax) * (width - 1) as f64).round() as usize;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cy = ((y / ymax) * (height - 1) as f64).round() as usize;
        #[allow(clippy::cast_possible_truncation)] // i % 10 < 10
        let ch = char::from_digit((i % 10) as u32, 10).unwrap_or('*');
        grid[height - 1 - cy][cx] = ch;
        legend.push_str(&format!("  {ch}: {label} ({x:.1}, {y:.1})\n"));
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&legend);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0.0, 1.0], None);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
        assert_eq!(sparkline(&[], None), "");
    }

    #[test]
    fn sparkline_respects_fixed_max() {
        let s = sparkline(&[0.5], Some(1.0));
        assert_eq!(s.chars().next().unwrap(), '▅');
    }

    #[test]
    fn downsample_preserves_length_bounds() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&series, 10);
        assert_eq!(d.len(), 10);
        assert!(d[9] > d[0]);
        assert_eq!(downsample(&series, 200).len(), 100);
        assert!(downsample(&[], 10).is_empty());
    }

    #[test]
    fn bar_chart_renders_all_items() {
        let s = bar_chart(&[("a", 1.0), ("bb", 2.0)], 10, "u");
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("2.0 u"));
        assert_eq!(bar_chart(&[], 10, "u"), "");
    }

    #[test]
    fn scatter_places_points() {
        let s = scatter(&[(1.0, 1.0, "low"), (10.0, 5.0, "high")], 20, 5);
        assert!(s.contains("0: low"));
        assert!(s.contains("1: high"));
        assert!(s.lines().count() > 6);
    }
}
