#!/usr/bin/env bash
# Full local CI: format, lint, tests, doc build, and the reproduction
# scorecard as the end-to-end smoke signal.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --release --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --release --workspace

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== engine bench: arena/reference digest parity =="
cargo bench -p zerosim-bench --bench engine_arena -- --quick
grep -q '"digests_equal":true' BENCH_engine.json

echo "== scorecard =="
cargo run --release -p zerosim-bench --bin repro -- scorecard | tail -n +2 | head -4

echo "CI OK"
