#!/usr/bin/env bash
# Tier-1 verification plus the hermeticity and hygiene gates.
#
#   1. hygiene:     cargo fmt --check && cargo clippy -D warnings
#   2. tier-1:      cargo build --release && cargo test -q
#   3. hermeticity: the same build must succeed with --offline and the
#                   manifests must declare no registry dependencies
#   4. bench smoke: in-house-harness bench targets in --quick mode,
#                   including the plan-cache (lower-once / re-stamp)
#                   regression check
#   5. solver:      shadow-mode equivalence smoke (incremental max-min
#                   solve cross-checked against the full reference on a
#                   golden config) and the BENCH_solver.json scorecard
#   6. engine:      shadow-mode engine equivalence (arena executor
#                   cross-checked against the reference executor on the
#                   golden dozen) and the BENCH_engine.json scorecard
#   7. sweep:       `repro --workers 4` must render the scorecard
#                   byte-identically to the serial run
#   8. planlint:    static analysis (ZL001-ZL009) over the 12 golden
#                   paper configurations; any deny-level finding fails.
#                   The v2 gate additionally pins zero warnings, the
#                   JSON schema_version, the zl008-selfcheck exit code,
#                   and the ZL009 bound verdict (BENCH_planlint.json)
#   9. planfind:    placement search smoke on a capacity-edge scenario;
#                   asserts the >=50% static-prune floor
#                   (BENCH_planfind.json) and width-invariant digests
#  10. fleetplan:   resilience-economics gate: the dollars-to-train
#                   search on a pods fleet, plus the Young/Daly
#                   validation scorecard (BENCH_fleet.json) — every
#                   golden config's analytic interval must beat both the
#                   2x and 0.5x cadence on ensemble goodput, with
#                   digests byte-identical at --workers 1 vs 4
#  11. servesim:    serving gate: TTFT/TPOT scorecard on the three
#                   golden deployments plus the decode regime sweep
#                   (BENCH_serve.json) — the in-binary sanity verdict
#                   must hold and digests must be byte-identical at
#                   --workers 1 vs 4
#
# The workspace must never require network/registry access; everything
# external was replaced by crates/testkit (see DESIGN.md, "Testing
# strategy").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hygiene: rustfmt =="
cargo fmt --check

echo "== hygiene: clippy (all targets, -D warnings, truncation lints) =="
cargo clippy --workspace --all-targets -- -D warnings \
  -W clippy::cast_possible_truncation

echo "== tier-1: build (release) =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== hermeticity: offline build =="
cargo build --release --offline
cargo test -q --offline --no-run

echo "== hermeticity: manifest scan =="
# No registry dependency may reappear in any manifest. Matches the old
# dependency names anywhere in a Cargo.toml; path-only deps never match.
if grep -rn "proptest\|criterion\|serde\|crossbeam\|parking_lot\|rand\b\|bytes =" \
    crates/*/Cargo.toml Cargo.toml; then
  echo "ERROR: registry dependency found in a manifest (see matches above)" >&2
  exit 1
fi
echo "manifests clean: path dependencies only"

echo "== bench smoke (in-house harness, --quick) =="
cargo bench -p zerosim-bench --bench flow_solver -- --quick

echo "== plan-cache smoke: lowering amortized, re-stamp cheap =="
# dag_build benches the full plan→lower→stamp pipeline next to the cached
# lower-once + re-stamp split; a run that silently falls back to
# rebuilding DAGs per iteration would show up here as stamp ≈ build.
cargo bench -p zerosim-bench --bench dag_build -- --quick
# The engine must report exactly one lowering per characterization run
# (ddp_run_produces_sane_report asserts report.plan_lowerings == 1).
cargo test -q -p zerosim-core ddp_run_produces_sane_report

echo "== solver-equivalence smoke: shadow mode on a golden config =="
# ZEROSIM_SHADOW=1 makes every incremental solve run the full reference
# solver next to it and assert bitwise-equal rates (FlowNet::shadow_check).
# Debug tests default shadow on; forcing the env keeps this a gate, not a
# default. dual_node_uses_roce runs a golden dual-node configuration.
ZEROSIM_SHADOW=1 cargo test -q -p zerosim-core dual_node_uses_roce
# The incremental solver must also match the pre-refactor cost profile's
# results bit-for-bit across randomized topologies (64-case property test).
cargo test -q --test proptest_invariants incremental_solver_matches_full_recompute

echo "== solver bench: BENCH_solver.json (full vs incremental, sweep) =="
# Emits BENCH_solver.json at the repo root and asserts the >=5x
# links-touched-per-solve floor on dual-node ZeRO-3 11.4 B.
cargo bench -p zerosim-bench --bench solver_incremental -- --quick

echo "== engine-equivalence smoke: arena shadow mode on the golden dozen =="
# ZEROSIM_ENGINE_SHADOW=1 makes every arena-executor run replay on the
# reference executor against cloned state and assert bitwise-equal
# outcomes, spans, and fault cursors (DagEngine::run_faulted). Debug
# tests default shadow on; forcing the env keeps this a gate, not a
# default. The golden-sweep test executes all 12 paper configurations.
ZEROSIM_ENGINE_SHADOW=1 cargo test -q --test sweep_determinism golden_sweep_is_width_invariant

echo "== engine bench: BENCH_engine.json (arena vs reference) =="
# Emits BENCH_engine.json at the repo root; asserts the >=5x
# bookkeeping-allocations-per-iteration floor and golden-dozen digest
# equality between the two executors.
cargo bench -p zerosim-bench --bench engine_arena -- --quick
if ! grep -q '"digests_equal":true' BENCH_engine.json; then
  echo "ERROR: BENCH_engine.json does not report digests_equal:true" >&2
  exit 1
fi
echo "engine scorecard: $(grep -o '"cores":[0-9.]*' BENCH_engine.json)," \
  "golden $(grep -o '"iters_per_sec_ratio":[0-9.]*' BENCH_engine.json | head -1)," \
  "hot-path $(grep -o '"iters_per_sec_ratio":[0-9.]*' BENCH_engine.json | tail -1)," \
  "alloc $(grep -o '"reduction":[0-9.]*' BENCH_engine.json)"

echo "== sweep smoke: --workers 4 renders the scorecard byte-identically =="
SWEEP_TMP="$(mktemp -d)"
trap 'rm -rf "$SWEEP_TMP"' EXIT
cargo run --release -q -p zerosim-bench --bin repro -- \
  --out "$SWEEP_TMP/serial" scorecard >/dev/null
cargo run --release -q -p zerosim-bench --bin repro -- \
  --out "$SWEEP_TMP/wide" --workers 4 scorecard >/dev/null
if ! cmp -s "$SWEEP_TMP/serial/scorecard.txt" "$SWEEP_TMP/wide/scorecard.txt"; then
  echo "ERROR: scorecard differs between --workers 1 and --workers 4" >&2
  diff "$SWEEP_TMP/serial/scorecard.txt" "$SWEEP_TMP/wide/scorecard.txt" >&2 || true
  exit 1
fi
echo "scorecard byte-identical at widths 1 and 4"
# Ordering and digests must also hold across the 12 golden paper
# configurations at widths 1/2/8 (tests/sweep_determinism.rs).
cargo test -q --test sweep_determinism

echo "== planlint gate: golden configs must be deny-clean =="
# Static analysis (ZL001-ZL007) over the 12 golden paper configurations;
# planlint exits non-zero on any deny-level finding. The lint fixtures
# and simulator-consistency checks live in tests/analyzer_lints.rs.
cargo run --release -q -p zerosim-bench --bin planlint -- golden
cargo test -q --test analyzer_lints

echo "== planlint v2 gate: codec legality + static step-time bounds =="
# The golden dozen must lint at zero deny AND zero warnings — every
# config's status reads [  ok] and every summary line reports
# "0 deny, 0 warning(s)" — and the JSON document must lead with its
# schema version so downstream parsers get a contract.
planlint_golden=$(cargo run --release -q -p zerosim-bench --bin planlint -- golden)
if printf '%s\n' "$planlint_golden" | grep -Eq '^\[(warn|DENY)\]'; then
    echo "planlint golden: a config linted at warn or DENY"
    printf '%s\n' "$planlint_golden"
    exit 1
fi
if printf '%s\n' "$planlint_golden" | grep 'planlint:' \
        | grep -vq '0 deny, 0 warning(s)'; then
    echo "planlint golden: expected zero deny and zero warnings everywhere"
    printf '%s\n' "$planlint_golden"
    exit 1
fi
cargo run --release -q -p zerosim-bench --bin planlint -- golden --json \
    | grep -q '^{"schema_version":2' \
    || { echo "planlint --json: missing top-level schema_version"; exit 1; }
# A deliberately illegal codec plan (wrong ratio for its dtype pair,
# compute fed encoded bytes with no decode) must exit 2 with ZL008
# findings — a silently disabled analyzer cannot pass this gate.
rc=0
cargo run --release -q -p zerosim-bench --bin planlint -- zl008-selfcheck \
    > planlint_selfcheck.log 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "zl008-selfcheck: expected exit code 2, got $rc"
    cat planlint_selfcheck.log
    exit 1
fi
grep -q "ZL008" planlint_selfcheck.log \
    || { echo "zl008-selfcheck: no ZL008 finding in output"; exit 1; }
rm -f planlint_selfcheck.log
# ZL009's static wire/protocol bounds must lower-bound the simulated
# iteration time for the golden matrix and the ZeRO++ family across
# jitter seeds (the binary exits non-zero if any bound is violated).
cargo run --release -q -p zerosim-bench --bin planlint -- --bench BENCH_planlint.json
grep -q '"all_bounds_hold":true' BENCH_planlint.json \
    || { echo "BENCH_planlint.json: all_bounds_hold is not true"; exit 1; }

echo "== planfind gate: capacity-edge search, honest pruning, width-invariant =="
# The placement search on a single paper node at 8 B: DDP and the
# in-HBM sharded plans cannot fit, so the static pass must prune at
# least half the grid (the ISSUE.md floor) before any simulation runs.
# Emits BENCH_planfind.json (enumerated/pruned/simulated + wall time).
cargo run --release -q -p zerosim-bench --bin planfind -- \
  --topology flat:1 --model 8 --bench BENCH_planfind.json >/dev/null
if ! grep -qE '"prune_fraction":(0\.[5-9][0-9]*|1)\b' BENCH_planfind.json; then
  echo "ERROR: BENCH_planfind.json prune_fraction below the 0.5 floor" >&2
  grep -o '"prune_fraction":[0-9.]*' BENCH_planfind.json >&2 || true
  exit 1
fi
echo "planfind scorecard: $(grep -o '"enumerated":[0-9]*' BENCH_planfind.json)," \
  "$(grep -o '"pruned":[0-9]*' BENCH_planfind.json)," \
  "$(grep -o '"simulated":[0-9]*' BENCH_planfind.json)," \
  "$(grep -o '"wall_secs":[0-9.]*' BENCH_planfind.json)"
# The search report must be byte-identical at any --workers width.
cargo run --release -q -p zerosim-bench --bin planfind -- \
  --topology flat:1 --model 8 --workers 4 --json > "$SWEEP_TMP/planfind4.json"
cargo run --release -q -p zerosim-bench --bin planfind -- \
  --topology flat:1 --model 8 --json > "$SWEEP_TMP/planfind1.json"
PF1_DIGEST="$(grep -o '"digest":"[0-9a-f]*"' "$SWEEP_TMP/planfind1.json")"
PF4_DIGEST="$(grep -o '"digest":"[0-9a-f]*"' "$SWEEP_TMP/planfind4.json")"
if [ -z "$PF1_DIGEST" ] || [ "$PF1_DIGEST" != "$PF4_DIGEST" ]; then
  echo "ERROR: planfind digest differs between --workers 1 and --workers 4" >&2
  echo "  serial: $PF1_DIGEST  fanned: $PF4_DIGEST" >&2
  exit 1
fi
echo "planfind digest width-invariant: $PF1_DIGEST"

echo "== resilience smoke: fault matrix deterministic, goodput bounded =="
# One small fault-matrix cell, run twice with the same seed + schedule:
# byte-identical digests, and faulted goodput strictly below healthy
# (straggler cell, 1.4 B dual-node).
cargo test -q -p zerosim-bench straggler_cell_loses_goodput_but_stays_deterministic
# An empty schedule must not perturb a run: run_resilient == run,
# digest-for-digest, across every golden paper configuration.
cargo test -q --test resilience fault_free_resilient_runs_are_byte_identical_for_every_paper_config

echo "== fleetplan gate: cost ranking + Young/Daly validation, width-invariant =="
# The acceptance CLI shape: rank (strategy x placement x interval) by
# dollars-to-train on a pods fleet under a failure rate and a deadline.
cargo run --release -q -p zerosim-bench --bin fleetplan -- \
  --topology pods:2x2x4:2:1.5 --model 11.4 --rate 0.1 --days 365 --json \
  > "$SWEEP_TMP/fleetcli.json"
if ! grep -q '"feasible":true' "$SWEEP_TMP/fleetcli.json"; then
  echo "ERROR: fleetplan found no feasible configuration for the acceptance shape" >&2
  exit 1
fi
# The scorecard: the costed ranking plus the Young/Daly brackets on the
# three golden configs at the 32-sample Monte-Carlo floor. Every bracket
# must show the analytic interval strictly beating both naive cadences.
cargo run --release -q -p zerosim-bench --bin fleetplan -- \
  --bench BENCH_fleet.json >/dev/null
YD_WINS="$(grep -o '"yd_win":true' BENCH_fleet.json | wc -l | tr -d ' ')"
if [ "$YD_WINS" != "3" ] || grep -q '"yd_win":false' BENCH_fleet.json; then
  echo "ERROR: BENCH_fleet.json Young/Daly win floor violated ($YD_WINS/3)" >&2
  exit 1
fi
# Ensemble and ranking digests must be byte-identical at any width.
cargo run --release -q -p zerosim-bench --bin fleetplan -- \
  --workers 4 --bench "$SWEEP_TMP/fleet4.json" >/dev/null
FP1="$(grep -o '"ensemble_digest":"[0-9a-f]*"\|"digest":"[0-9a-f]*"' BENCH_fleet.json)"
FP4="$(grep -o '"ensemble_digest":"[0-9a-f]*"\|"digest":"[0-9a-f]*"' "$SWEEP_TMP/fleet4.json")"
if [ -z "$FP1" ] || [ "$FP1" != "$FP4" ]; then
  echo "ERROR: fleetplan digests differ between --workers 1 and --workers 4" >&2
  exit 1
fi
echo "fleetplan scorecard: $YD_WINS/3 Young/Daly wins," \
  "$(grep -o '"ensemble_digest":"[0-9a-f]*"' BENCH_fleet.json)"

echo "== servesim gate: serving latencies sane, width-invariant =="
# The TTFT/TPOT scorecard on the three golden serving deployments (dense
# 1-node, dense 2-node, NVMe-streamed) plus the decode regime sweep.
# `sane` is computed in-binary: every request completes, percentiles are
# ordered, the (batch x KV-bucket) plan cache hits, dense TTFT exceeds
# dense TPOT, and NVMe streaming costs first-token latency over dense.
cargo run --release -q -p zerosim-bench --bin servesim -- \
  --bench BENCH_serve.json >/dev/null
if ! grep -q '"sane":true' BENCH_serve.json; then
  echo "ERROR: BENCH_serve.json does not report sane:true" >&2
  exit 1
fi
# Serving digests must be byte-identical at any --workers width.
cargo run --release -q -p zerosim-bench --bin servesim -- \
  --workers 4 --bench "$SWEEP_TMP/serve4.json" >/dev/null
SV1="$(grep -o '"serve_digest":"[0-9a-f]*"' BENCH_serve.json)"
SV4="$(grep -o '"serve_digest":"[0-9a-f]*"' "$SWEEP_TMP/serve4.json")"
if [ -z "$SV1" ] || [ "$SV1" != "$SV4" ]; then
  echo "ERROR: servesim digests differ between --workers 1 and --workers 4" >&2
  echo "  serial: $SV1  fanned: $SV4" >&2
  exit 1
fi
# Trace sampling and the golden deployments must also replay identically
# across runs and widths (tests/serve_determinism.rs).
cargo test -q --test serve_determinism
echo "servesim scorecard: $SV1," \
  "$(grep -o '"nvme_ttft_ratio":[0-9.]*' BENCH_serve.json)"

echo "VERIFY OK"
