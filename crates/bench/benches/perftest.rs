//! Cost of the microbenchmark harness (Fig. 3 / Fig. 4 regeneration).

use zerosim_hw::ClusterSpec;
use zerosim_perftest::{latency_sweep, stress_test, RdmaSemantic, StressScenario};
use zerosim_testkit::bench::Bench;

fn bench_perftest(c: &mut Bench) {
    let mut group = c.benchmark_group("perftest");
    group.bench_function("latency_sweep", |b| {
        let spec = ClusterSpec::default();
        let sizes = zerosim_perftest::paper_message_sizes();
        b.iter(|| latency_sweep(&spec, RdmaSemantic::Write, true, &sizes));
    });
    group.bench_function("stress_gpu_cross", |b| {
        b.iter(|| stress_test(StressScenario::GpuRoce { cross_socket: true }));
    });
    group.finish();
}

zerosim_testkit::bench_main!(bench_perftest);
