//! Bandwidth audit: stress the fabric the way the paper's Sec. III-C does
//! and then watch every interconnect during a real dual-node training run
//! — answering "is my network the bottleneck?".
//!
//! Run with: `cargo run --release --example bandwidth_audit`

use zerosim_core::{RunConfig, TrainingSim};
use zerosim_hw::{ClusterSpec, LinkClass};
use zerosim_model::GptConfig;
use zerosim_perftest::{stress_test, StressScenario};
use zerosim_report::{downsample, gbps, sparkline, Table};
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1: raw fabric stress tests (Fig. 4 methodology).
    println!("== fabric stress tests ==");
    let mut t = Table::new(vec!["scenario", "RoCE attained", "of theoretical"]);
    for scenario in [
        StressScenario::CpuRoce {
            cross_socket: false,
        },
        StressScenario::CpuRoce { cross_socket: true },
        StressScenario::GpuRoce {
            cross_socket: false,
        },
        StressScenario::GpuRoce { cross_socket: true },
    ] {
        let out = stress_test(scenario);
        t.row(vec![
            scenario.label(),
            format!("{} GBps", gbps(out.class(LinkClass::Roce).avg)),
            format!("{:.0}%", out.roce_fraction * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("cross-socket paths lose ~half their bandwidth to the I/O-die");
    println!("SerDes-pair contention the paper hypothesizes (Sec. III-C4).\n");

    // Phase 2: what training actually puts on each wire.
    println!("== dual-node ZeRO-3 training, per-interconnect utilization ==");
    let mut sim = TrainingSim::new(ClusterSpec::default())?;
    let report = sim.run(
        &Strategy::Zero {
            stage: ZeroStage::Three,
        },
        &GptConfig::paper_model_with_params(1.4),
        &TrainOptions::dual_node(),
        &RunConfig::default(),
    )?;
    println!(
        "iteration {} at {:.0} TFLOP/s aggregate",
        report.iter_time,
        report.throughput_tflops()
    );
    for class in LinkClass::TABLE_IV {
        let stats = report.bandwidth.stats(0, class);
        let series = report.bandwidth.series(0, class);
        println!(
            "  {class:<10} {} avg {} / p90 {} / peak {} GBps",
            sparkline(&downsample(series, 40), None),
            gbps(stats.avg),
            gbps(stats.p90),
            gbps(stats.peak),
        );
    }

    println!("\nhottest wires (avg utilization of capacity):");
    for hot in report.hot_links.iter().take(8) {
        println!(
            "  {:<22} {:>6} GBps  {:>5.1}%",
            hot.name,
            gbps(hot.avg),
            hot.utilization * 100.0
        );
    }
    Ok(())
}
