//! Parameterized cluster-topology generators.
//!
//! The paper's testbed is two nodes on one switch; production clusters are
//! thousands of GPUs behind multi-tier fabrics. A [`TopologySpec`] is a
//! small, named generator that *lowers* into the existing
//! [`ClusterSpec`]/[`Cluster`](crate::Cluster) route model: nodes keep the
//! XE8545 internals (sockets, xGMI, PCIe, NVLink, IOD contention), while
//! the generator decides how many nodes exist and what aggregation tiers
//! ([`FabricSpec`]) sit between their NICs.
//!
//! Three families are provided:
//!
//! * [`TopologySpec::Flat`] — N paper-style nodes on one non-blocking
//!   switch. `Flat { nodes: 2 }` (the default) lowers to exactly
//!   [`ClusterSpec::default`], so everything built on the golden paper
//!   configs is unchanged byte for byte.
//! * [`TopologySpec::FatTree`] — racks of nodes behind rail-optimized
//!   top-of-rack uplinks with a configurable oversubscription ratio
//!   (1.0 = full bisection, 2.0 = half, ...).
//! * [`TopologySpec::NvlinkIslands`] — NVLink islands (nodes with a wider
//!   all-to-all NVLink mesh) grouped into pods behind pod uplinks, pods
//!   joined by a two-half spine; pod and spine oversubscription are
//!   independent knobs.
//!
//! ```
//! use zerosim_hw::{Cluster, TopologySpec};
//!
//! let topo = TopologySpec::FatTree { racks: 4, nodes_per_rack: 2, oversubscription: 2.0 };
//! let cluster = Cluster::new(topo.build().unwrap()).unwrap();
//! assert_eq!(cluster.spec().nodes, 8);
//! assert_eq!(
//!     cluster.bisection_bandwidth().unwrap(),
//!     topo.bisection_bandwidth().unwrap(),
//! );
//! ```

use std::fmt;

use crate::spec::{ClusterSpec, FabricSpec, FabricTier};

/// A named, parameterized cluster topology that lowers to a
/// [`ClusterSpec`]. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// N paper-style nodes on a single non-blocking switch.
    Flat {
        /// Number of nodes.
        nodes: usize,
    },
    /// Racks of paper-style nodes behind oversubscribed ToR uplinks.
    FatTree {
        /// Number of racks.
        racks: usize,
        /// Nodes per rack.
        nodes_per_rack: usize,
        /// Ratio of the rack's NIC aggregate to its uplink capacity
        /// (1.0 = non-blocking).
        oversubscription: f64,
    },
    /// NVLink islands in pods over a two-half spine.
    NvlinkIslands {
        /// Number of pods (must be even so the spine has two halves).
        pods: usize,
        /// Islands (nodes) per pod.
        islands_per_pod: usize,
        /// GPUs per island (all-to-all NVLink inside the island; must be a
        /// positive multiple of [`ClusterSpec::SOCKETS_PER_NODE`]).
        gpus_per_island: usize,
        /// Pod-uplink oversubscription against the pod's NIC aggregate.
        pod_oversubscription: f64,
        /// Spine oversubscription against one half's pod-uplink aggregate.
        spine_oversubscription: f64,
    },
}

impl Default for TopologySpec {
    /// The paper's testbed: two flat nodes.
    fn default() -> Self {
        TopologySpec::Flat { nodes: 2 }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Flat { nodes } => write!(f, "flat:{nodes}"),
            TopologySpec::FatTree {
                racks,
                nodes_per_rack,
                oversubscription,
            } => write!(f, "fat-tree:{racks}x{nodes_per_rack}:{oversubscription}"),
            TopologySpec::NvlinkIslands {
                pods,
                islands_per_pod,
                gpus_per_island,
                pod_oversubscription,
                spine_oversubscription,
            } => write!(
                f,
                "pods:{pods}x{islands_per_pod}x{gpus_per_island}:{pod_oversubscription}:{spine_oversubscription}"
            ),
        }
    }
}

impl TopologySpec {
    /// Number of nodes this topology generates.
    pub fn nodes(&self) -> usize {
        match self {
            TopologySpec::Flat { nodes } => *nodes,
            TopologySpec::FatTree {
                racks,
                nodes_per_rack,
                ..
            } => racks * nodes_per_rack,
            TopologySpec::NvlinkIslands {
                pods,
                islands_per_pod,
                ..
            } => pods * islands_per_pod,
        }
    }

    /// GPUs per node this topology generates.
    pub fn gpus_per_node(&self) -> usize {
        match self {
            TopologySpec::NvlinkIslands {
                gpus_per_island, ..
            } => *gpus_per_island,
            _ => ClusterSpec::default().gpus_per_node,
        }
    }

    /// Total GPUs this topology generates.
    pub fn total_gpus(&self) -> usize {
        self.nodes() * self.gpus_per_node()
    }

    /// Lowers the topology into a full [`ClusterSpec`] (paper defaults for
    /// everything inside a node).
    ///
    /// # Errors
    /// Returns a human-readable description of the first invalid
    /// parameter (zero counts, odd pod counts, oversubscription < 1, ...).
    pub fn build(&self) -> Result<ClusterSpec, String> {
        let base = ClusterSpec::default();
        let nic_dir = base.bw.roce_dir;
        let switch_lat = base.lat.roce_s;
        let spn = ClusterSpec::SOCKETS_PER_NODE;
        let spec = match *self {
            TopologySpec::Flat { nodes } => base.with_nodes(nodes),
            TopologySpec::FatTree {
                racks,
                nodes_per_rack,
                oversubscription,
            } => {
                if racks == 0 || nodes_per_rack < 2 {
                    return Err("fat-tree needs at least 1 rack of 2 nodes".into());
                }
                check_oversub("rack", oversubscription)?;
                let rack_aggregate = (nodes_per_rack * spn) as f64 * nic_dir;
                base.with_nodes(racks * nodes_per_rack)
                    .with_fabric(FabricSpec {
                        tiers: vec![FabricTier {
                            nodes_per_group: nodes_per_rack,
                            up_bytes_per_s: rack_aggregate / oversubscription,
                            latency_s: switch_lat,
                        }],
                    })
            }
            TopologySpec::NvlinkIslands {
                pods,
                islands_per_pod,
                gpus_per_island,
                pod_oversubscription,
                spine_oversubscription,
            } => {
                if pods < 2 || !pods.is_multiple_of(2) {
                    return Err(format!("pods must be even and >= 2 (got {pods})"));
                }
                if islands_per_pod < 2 {
                    return Err("need at least 2 islands per pod".into());
                }
                check_oversub("pod", pod_oversubscription)?;
                check_oversub("spine", spine_oversubscription)?;
                let nodes = pods * islands_per_pod;
                let pod_aggregate = (islands_per_pod * spn) as f64 * nic_dir;
                let pod_up = pod_aggregate / pod_oversubscription;
                let half_pods = pods / 2;
                base.with_nodes(nodes)
                    .with_gpus_per_node(gpus_per_island)
                    .with_fabric(FabricSpec {
                        tiers: vec![
                            FabricTier {
                                nodes_per_group: islands_per_pod,
                                up_bytes_per_s: pod_up,
                                latency_s: switch_lat,
                            },
                            FabricTier {
                                nodes_per_group: half_pods * islands_per_pod,
                                up_bytes_per_s: half_pods as f64 * pod_up / spine_oversubscription,
                                latency_s: 2.0 * switch_lat,
                            },
                        ],
                    })
            }
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Closed-form one-direction bandwidth across the contiguous even node
    /// bisection, from the generator's own parameters. The lowered
    /// [`Cluster::bisection_bandwidth`](crate::Cluster::bisection_bandwidth)
    /// must agree exactly — that equality is the generator's conformance
    /// property.
    ///
    /// Returns `None` for single-node topologies.
    pub fn bisection_bandwidth(&self) -> Option<f64> {
        let base = ClusterSpec::default();
        let nic_dir = base.bw.roce_dir;
        let spn = ClusterSpec::SOCKETS_PER_NODE as f64;
        let half = self.nodes() / 2;
        if half == 0 {
            return None;
        }
        let nic_cut = half as f64 * spn * nic_dir;
        Some(match *self {
            TopologySpec::Flat { .. } => nic_cut,
            TopologySpec::FatTree {
                nodes_per_rack,
                oversubscription,
                ..
            } => {
                let rack_up = (nodes_per_rack as f64) * spn * nic_dir / oversubscription;
                let racks_in_half = half / nodes_per_rack;
                if racks_in_half == 0 {
                    // Single rack: the cut stays under one ToR.
                    nic_cut
                } else {
                    nic_cut.min(racks_in_half as f64 * rack_up)
                }
            }
            TopologySpec::NvlinkIslands {
                pods,
                islands_per_pod,
                pod_oversubscription,
                spine_oversubscription,
                ..
            } => {
                let pod_up = (islands_per_pod as f64) * spn * nic_dir / pod_oversubscription;
                let half_pods = (pods / 2) as f64;
                nic_cut
                    .min(half_pods * pod_up)
                    .min(half_pods * pod_up / spine_oversubscription)
            }
        })
    }

    /// Parses the compact CLI syntax used by `planlint --topology` and
    /// `planfind --topology`:
    ///
    /// * `paper` — the two-node testbed ([`TopologySpec::default`]);
    /// * `flat:<nodes>`;
    /// * `fat-tree:<racks>x<nodes_per_rack>:<oversub>`;
    /// * `pods:<pods>x<islands>x<gpus>:<pod_oversub>:<spine_oversub>`.
    ///
    /// # Errors
    /// Returns a usage-style description of the malformed field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let fields: Vec<&str> = s.split(':').collect();
        let topo = match fields[0] {
            "paper" => TopologySpec::default(),
            "flat" => TopologySpec::Flat {
                nodes: parse_count(fields.get(1), "flat:<nodes>")?,
            },
            "fat-tree" => {
                let dims = parse_dims(
                    fields.get(1),
                    2,
                    "fat-tree:<racks>x<nodes_per_rack>:<oversub>",
                )?;
                TopologySpec::FatTree {
                    racks: dims[0],
                    nodes_per_rack: dims[1],
                    oversubscription: parse_ratio(fields.get(2), "fat-tree oversubscription")?,
                }
            }
            "pods" => {
                let dims = parse_dims(
                    fields.get(1),
                    3,
                    "pods:<pods>x<islands>x<gpus>:<pod>:<spine>",
                )?;
                TopologySpec::NvlinkIslands {
                    pods: dims[0],
                    islands_per_pod: dims[1],
                    gpus_per_island: dims[2],
                    pod_oversubscription: parse_ratio(fields.get(2), "pod oversubscription")?,
                    spine_oversubscription: parse_ratio(fields.get(3), "spine oversubscription")?,
                }
            }
            other => {
                return Err(format!(
                    "unknown topology family '{other}' (expected paper, flat, fat-tree, or pods)"
                ))
            }
        };
        // Surface parameter errors at parse time so CLIs fail fast.
        topo.build()?;
        Ok(topo)
    }
}

fn check_oversub(what: &str, ratio: f64) -> Result<(), String> {
    if !ratio.is_finite() || ratio < 1.0 {
        return Err(format!(
            "{what} oversubscription must be >= 1.0 (got {ratio})"
        ));
    }
    Ok(())
}

fn parse_count(field: Option<&&str>, usage: &str) -> Result<usize, String> {
    field
        .and_then(|f| f.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("expected {usage}"))
}

fn parse_dims(field: Option<&&str>, want: usize, usage: &str) -> Result<Vec<usize>, String> {
    let dims: Vec<usize> = field
        .map(|f| {
            f.split('x')
                .filter_map(|d| d.parse::<usize>().ok())
                .collect()
        })
        .unwrap_or_default();
    if dims.len() != want || dims.contains(&0) {
        return Err(format!("expected {usage}"));
    }
    Ok(dims)
}

fn parse_ratio(field: Option<&&str>, what: &str) -> Result<f64, String> {
    let r = field
        .and_then(|f| f.parse::<f64>().ok())
        .ok_or_else(|| format!("expected a numeric {what}"))?;
    check_oversub(what, r)?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cluster;

    #[test]
    fn default_lowers_to_the_paper_testbed() {
        let spec = TopologySpec::default().build().unwrap();
        assert_eq!(spec, ClusterSpec::default());
    }

    #[test]
    fn flat_scales_node_count_only() {
        let spec = TopologySpec::Flat { nodes: 16 }.build().unwrap();
        assert_eq!(spec.nodes, 16);
        assert!(spec.fabric.is_flat());
        assert_eq!(spec.gpus_per_node, 4);
    }

    #[test]
    fn fat_tree_oversubscription_sets_uplinks() {
        let topo = TopologySpec::FatTree {
            racks: 4,
            nodes_per_rack: 4,
            oversubscription: 2.0,
        };
        let spec = topo.build().unwrap();
        assert_eq!(spec.nodes, 16);
        assert_eq!(spec.fabric.tiers.len(), 1);
        let tier = spec.fabric.tiers[0];
        assert_eq!(tier.nodes_per_group, 4);
        // 4 nodes × 2 NICs × roce / 2.
        assert_eq!(tier.up_bytes_per_s, 4.0 * 2.0 * 0.93 * 25e9 / 2.0);
    }

    #[test]
    fn nvlink_islands_build_two_tiers() {
        let topo = TopologySpec::NvlinkIslands {
            pods: 4,
            islands_per_pod: 4,
            gpus_per_island: 8,
            pod_oversubscription: 2.0,
            spine_oversubscription: 2.0,
        };
        let spec = topo.build().unwrap();
        assert_eq!(spec.nodes, 16);
        assert_eq!(spec.gpus_per_node, 8);
        assert_eq!(spec.fabric.tiers.len(), 2);
        assert_eq!(spec.fabric.tiers[0].nodes_per_group, 4);
        assert_eq!(spec.fabric.tiers[1].nodes_per_group, 8);
        assert_eq!(topo.total_gpus(), 128);
    }

    #[test]
    fn bisection_closed_forms_match_lowered_clusters() {
        let topos = [
            TopologySpec::default(),
            TopologySpec::Flat { nodes: 8 },
            TopologySpec::FatTree {
                racks: 4,
                nodes_per_rack: 2,
                oversubscription: 4.0,
            },
            TopologySpec::FatTree {
                racks: 2,
                nodes_per_rack: 8,
                oversubscription: 1.0,
            },
            TopologySpec::NvlinkIslands {
                pods: 2,
                islands_per_pod: 4,
                gpus_per_island: 8,
                pod_oversubscription: 1.0,
                spine_oversubscription: 4.0,
            },
        ];
        for topo in topos {
            let cluster = Cluster::new(topo.build().unwrap()).unwrap();
            assert_eq!(
                cluster.bisection_bandwidth(),
                topo.bisection_bandwidth(),
                "{topo}"
            );
        }
    }

    #[test]
    fn parse_round_trips_display() {
        for s in ["flat:4", "fat-tree:4x2:2", "pods:2x4x8:1.5:4"] {
            let topo = TopologySpec::parse(s).unwrap();
            let again = TopologySpec::parse(&topo.to_string()).unwrap();
            assert_eq!(topo, again, "{s}");
        }
        assert_eq!(
            TopologySpec::parse("paper").unwrap(),
            TopologySpec::default()
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for s in [
            "mesh:4",
            "flat:0",
            "flat:x",
            "fat-tree:4x2",
            "fat-tree:4x2:0.5",
            "pods:3x4x8:2:2", // odd pod count
            "pods:2x4x7:2:2", // odd GPUs per island
        ] {
            assert!(TopologySpec::parse(s).is_err(), "{s} should not parse");
        }
    }
}
