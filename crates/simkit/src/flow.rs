//! Flow-level network simulation with max-min fair bandwidth sharing.
//!
//! Instead of simulating individual packets, each active transfer is a
//! *flow* with a byte count and a route (a sequence of [`LinkId`]s). At any
//! instant the rate of every flow is the max-min fair allocation over the
//! current link capacities (the classic *progressive filling* algorithm used
//! by flow-level simulators such as SimGrid). Events happen only when a flow
//! starts, a flow finishes, or a variable-rate link (token bucket) changes
//! state, which makes simulating hundreds of seconds of training traffic
//! cheap while preserving contention behaviour.
//!
//! Links are unidirectional; model a full-duplex interface as two links.

use std::collections::BTreeMap;

use crate::bucket::TokenBucket;
use crate::time::SimTime;

/// Identifies a link within a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The index of this link in creation order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies an active flow within a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

/// Capacity model of a link.
#[derive(Debug, Clone, PartialEq)]
pub enum Capacity {
    /// Constant capacity in bytes/second.
    Fixed(f64),
    /// Token-bucket variable capacity (e.g. an NVMe device with a DRAM
    /// write-back cache).
    Bucketed(TokenBucket),
}

impl Capacity {
    fn current(&self) -> f64 {
        match self {
            Capacity::Fixed(c) => *c,
            Capacity::Bucketed(b) => b.current_rate(),
        }
    }
}

#[derive(Debug)]
struct LinkState {
    name: String,
    capacity: Capacity,
    /// Aggregate rate of flows currently crossing this link, refreshed by
    /// [`FlowNet::recompute_rates`].
    demand: f64,
}

#[derive(Debug)]
struct FlowState {
    route: Vec<LinkId>,
    remaining: f64,
    rate: f64,
    /// Per-flow rate ceiling (bytes/second), e.g. from the SerDes-pair
    /// degradation model; `f64::INFINITY` when uncapped.
    cap: f64,
}

/// Receives per-link byte accounting as simulated time advances.
///
/// Implementations aggregate the callbacks into whatever statistic they
/// need (time-bucketed utilization, totals, ...). `start` is the simulated
/// time at which the `dt_secs`-long interval began.
pub trait FlowObserver {
    /// Called once per (link, interval) with the bytes moved on that link.
    fn on_transfer(&mut self, link: LinkId, start: SimTime, dt_secs: f64, bytes: f64);
}

/// A no-op observer for callers that only need flow completion times.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl FlowObserver for NullObserver {
    fn on_transfer(&mut self, _: LinkId, _: SimTime, _: f64, _: f64) {}
}

/// Completion epsilon: flows with fewer residual bytes are finished.
const EPS_BYTES: f64 = 0.5;

/// The flow network: links plus the set of currently active flows.
///
/// ```
/// use zerosim_simkit::flow::{FlowNet, NullObserver};
/// use zerosim_simkit::SimTime;
///
/// let mut net = FlowNet::new();
/// let l = net.add_link("pcie", 64e9);
/// let a = net.start_flow(&[l], 64e9); // 1 s alone
/// let b = net.start_flow(&[l], 64e9); // shares fairly
/// let (dt, done) = net.advance_to_next_event(SimTime::ZERO, &mut NullObserver).unwrap();
/// assert!((dt - 2.0).abs() < 1e-9); // both finish together after 2 s
/// assert_eq!(done, vec![a, b]);
/// ```
#[derive(Debug, Default)]
pub struct FlowNet {
    links: Vec<LinkState>,
    flows: BTreeMap<FlowId, FlowState>,
    next_flow: u64,
    rates_dirty: bool,
}

impl FlowNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fixed-capacity link (`bytes_per_sec`) and returns its id.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn add_link(&mut self, name: impl Into<String>, bytes_per_sec: f64) -> LinkId {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "link capacity must be finite and positive"
        );
        self.push_link(name.into(), Capacity::Fixed(bytes_per_sec))
    }

    /// Adds a token-bucket link and returns its id.
    pub fn add_bucketed_link(&mut self, name: impl Into<String>, bucket: TokenBucket) -> LinkId {
        self.push_link(name.into(), Capacity::Bucketed(bucket))
    }

    fn push_link(&mut self, name: String, capacity: Capacity) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(LinkState {
            name,
            capacity,
            demand: 0.0,
        });
        id
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of active flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The name given to `link` at creation.
    ///
    /// # Panics
    /// Panics if `link` does not belong to this network.
    pub fn link_name(&self, link: LinkId) -> &str {
        &self.links[link.0].name
    }

    /// Instantaneous capacity of `link` in bytes/second.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.links[link.0].capacity.current()
    }

    /// Aggregate rate of flows currently crossing `link`, in bytes/second.
    pub fn link_demand(&mut self, link: LinkId) -> f64 {
        self.ensure_rates();
        self.links[link.0].demand
    }

    /// Starts a flow of `bytes` along `route` and returns its id.
    ///
    /// # Panics
    /// Panics if the route is empty, references an unknown link, or `bytes`
    /// is not finite and positive.
    pub fn start_flow(&mut self, route: &[LinkId], bytes: f64) -> FlowId {
        self.start_flow_capped(route, bytes, f64::INFINITY)
    }

    /// Starts a flow with an additional per-flow rate ceiling in
    /// bytes/second (the flow never exceeds `cap` even when its links have
    /// spare capacity). Used to model path-specific degradation such as the
    /// EPYC I/O-die SerDes-pair contention.
    ///
    /// # Panics
    /// Same conditions as [`FlowNet::start_flow`], plus a non-positive or
    /// NaN `cap`.
    pub fn start_flow_capped(&mut self, route: &[LinkId], bytes: f64, cap: f64) -> FlowId {
        assert!(
            !route.is_empty(),
            "flow route must contain at least one link"
        );
        assert!(
            bytes.is_finite() && bytes > 0.0,
            "flow size must be finite and positive (got {bytes})"
        );
        assert!(cap > 0.0 && !cap.is_nan(), "flow cap must be positive");
        for l in route {
            assert!(
                l.0 < self.links.len(),
                "route references unknown link {l:?}"
            );
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id,
            FlowState {
                route: route.to_vec(),
                remaining: bytes,
                rate: 0.0,
                cap,
            },
        );
        self.rates_dirty = true;
        id
    }

    /// Remaining bytes of `flow`, or `None` once it has completed.
    pub fn flow_remaining(&self, flow: FlowId) -> Option<f64> {
        self.flows.get(&flow).map(|f| f.remaining)
    }

    /// Current max-min fair rate of `flow` in bytes/second, or `None` once
    /// it has completed.
    pub fn flow_rate(&mut self, flow: FlowId) -> Option<f64> {
        self.ensure_rates();
        self.flows.get(&flow).map(|f| f.rate)
    }

    fn ensure_rates(&mut self) {
        if self.rates_dirty {
            self.recompute_rates();
        }
    }

    /// Progressive-filling max-min fair allocation.
    fn recompute_rates(&mut self) {
        let n_links = self.links.len();
        let mut residual: Vec<f64> = self.links.iter().map(|l| l.capacity.current()).collect();
        let mut unfixed_on_link = vec![0usize; n_links];

        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut unfixed: Vec<bool> = vec![true; ids.len()];
        for (i, id) in ids.iter().enumerate() {
            let f = &self.flows[id];
            for l in &f.route {
                unfixed_on_link[l.0] += 1;
            }
            let _ = i;
        }

        let mut remaining_unfixed = ids.len();
        while remaining_unfixed > 0 {
            // Bottleneck link: smallest fair share among links with unfixed flows.
            let mut link_best: Option<(f64, usize)> = None;
            for (li, _link) in self.links.iter().enumerate() {
                if unfixed_on_link[li] > 0 {
                    let share = (residual[li] / unfixed_on_link[li] as f64).max(0.0);
                    if link_best.is_none_or(|(s, _)| share < s) {
                        link_best = Some((share, li));
                    }
                }
            }
            // Capped flow that would saturate before the link share.
            let mut cap_best: Option<(f64, usize)> = None;
            for (i, id) in ids.iter().enumerate() {
                if unfixed[i] {
                    let cap = self.flows[id].cap;
                    if cap.is_finite() && cap_best.is_none_or(|(c, _)| cap < c) {
                        cap_best = Some((cap, i));
                    }
                }
            }

            let cap_wins = match (cap_best, link_best) {
                (Some((c, _)), Some((s, _))) => c <= s,
                (Some(_), None) => true,
                _ => false,
            };

            if cap_wins {
                let (cap, i) = cap_best.expect("cap_wins implies cap_best");
                unfixed[i] = false;
                remaining_unfixed -= 1;
                let id = ids[i];
                let route = self.flows.get_mut(&id).map(|f| {
                    f.rate = cap;
                    f.route.clone()
                });
                if let Some(route) = route {
                    for l in route {
                        residual[l.0] = (residual[l.0] - cap).max(0.0);
                        unfixed_on_link[l.0] -= 1;
                    }
                }
                continue;
            }

            let Some((share, bottleneck)) = link_best else {
                break;
            };

            // Fix every unfixed flow crossing the bottleneck at `share`.
            let mut fixed_any = false;
            for (i, id) in ids.iter().enumerate() {
                if !unfixed[i] {
                    continue;
                }
                let crosses = self.flows[id].route.iter().any(|l| l.0 == bottleneck);
                if !crosses {
                    continue;
                }
                fixed_any = true;
                unfixed[i] = false;
                remaining_unfixed -= 1;
                let route = self.flows.get_mut(id).map(|f| {
                    f.rate = share;
                    f.route.clone()
                });
                if let Some(route) = route {
                    for l in route {
                        residual[l.0] = (residual[l.0] - share).max(0.0);
                        unfixed_on_link[l.0] -= 1;
                    }
                }
            }
            debug_assert!(fixed_any, "progressive filling made no progress");
            if !fixed_any {
                break;
            }
        }

        for (li, link) in self.links.iter_mut().enumerate() {
            link.demand = (link.capacity.current() - residual[li]).max(0.0);
        }
        self.rates_dirty = false;
    }

    /// Seconds until the next intrinsic event (a flow completion or a token
    /// bucket transition), or `None` when nothing is in motion.
    pub fn next_event_in(&mut self) -> Option<f64> {
        self.ensure_rates();
        let mut next: Option<f64> = None;
        for f in self.flows.values() {
            if f.rate > 0.0 {
                let t = f.remaining / f.rate;
                if next.is_none_or(|n| t < n) {
                    next = Some(t);
                }
            }
        }
        for l in &self.links {
            if let Capacity::Bucketed(b) = &l.capacity {
                if let Some(t) = b.next_transition(l.demand) {
                    if next.is_none_or(|n| t < n) {
                        next = Some(t);
                    }
                }
            }
        }
        next
    }

    /// Advances the network by exactly `dt_secs`, reporting per-link bytes to
    /// `obs` and returning the flows that completed during the interval.
    ///
    /// The caller is responsible for choosing `dt_secs` no larger than
    /// [`FlowNet::next_event_in`]; larger steps lose events (debug builds
    /// assert against overshoot).
    pub fn advance(
        &mut self,
        now: SimTime,
        dt_secs: f64,
        obs: &mut dyn FlowObserver,
    ) -> Vec<FlowId> {
        assert!(dt_secs >= 0.0 && dt_secs.is_finite());
        self.ensure_rates();

        let mut completed = Vec::new();
        for (id, f) in self.flows.iter_mut() {
            if f.rate <= 0.0 {
                continue;
            }
            let bytes = (f.rate * dt_secs).min(f.remaining);
            f.remaining -= bytes;
            for l in &f.route {
                obs.on_transfer(*l, now, dt_secs, bytes);
            }
            if f.remaining <= EPS_BYTES {
                completed.push(*id);
            }
        }
        // Buckets drain/refill with the pre-advance demand.
        for l in &mut self.links {
            if let Capacity::Bucketed(b) = &mut l.capacity {
                b.advance(dt_secs, l.demand);
            }
        }
        for id in &completed {
            self.flows.remove(id);
        }
        if !completed.is_empty() || self.has_buckets() {
            self.rates_dirty = true;
        }
        completed
    }

    fn has_buckets(&self) -> bool {
        self.links
            .iter()
            .any(|l| matches!(l.capacity, Capacity::Bucketed(_)))
    }

    /// Convenience driver: advances to the next intrinsic event and returns
    /// `(dt_secs, completed_flows)`, or `None` if no flow is active.
    pub fn advance_to_next_event(
        &mut self,
        now: SimTime,
        obs: &mut dyn FlowObserver,
    ) -> Option<(f64, Vec<FlowId>)> {
        let dt = self.next_event_in()?;
        let done = self.advance(now, dt, obs);
        Some((dt, done))
    }

    /// Runs until every active flow completes, returning total elapsed
    /// seconds. Intended for tests and simple measurements.
    pub fn drain(&mut self, obs: &mut dyn FlowObserver) -> f64 {
        let mut t = 0.0;
        let mut guard = 0u64;
        while self.flow_count() > 0 {
            match self.advance_to_next_event(SimTime::from_secs(t), obs) {
                Some((dt, _)) => t += dt,
                None => break, // only bucket refills remain
            }
            guard += 1;
            assert!(guard < 10_000_000, "FlowNet::drain did not converge");
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_time(net: &mut FlowNet) -> f64 {
        net.drain(&mut NullObserver)
    }

    #[test]
    fn single_flow_is_limited_by_bottleneck() {
        let mut net = FlowNet::new();
        let fast = net.add_link("fast", 100.0);
        let slow = net.add_link("slow", 10.0);
        net.start_flow(&[fast, slow], 100.0);
        assert!((drain_time(&mut net) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        let a = net.start_flow(&[l], 50.0);
        net.start_flow(&[l], 100.0);
        // Both run at 5 B/s; a finishes at t=10, then b runs at 10 B/s.
        let mut t = 0.0;
        let (dt, done) = net
            .advance_to_next_event(SimTime::ZERO, &mut NullObserver)
            .unwrap();
        t += dt;
        assert_eq!(done, vec![a]);
        assert!((t - 10.0).abs() < 1e-9);
        let (dt, _) = net
            .advance_to_next_event(SimTime::from_secs(t), &mut NullObserver)
            .unwrap();
        t += dt;
        assert!((t - 15.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_respects_per_flow_bottlenecks() {
        // Flow A crosses a private 2 B/s link plus the shared 10 B/s link;
        // flow B only crosses the shared link. A gets 2, B gets 8.
        let mut net = FlowNet::new();
        let shared = net.add_link("shared", 10.0);
        let private = net.add_link("private", 2.0);
        let a = net.start_flow(&[private, shared], 100.0);
        let b = net.start_flow(&[shared], 100.0);
        assert!((net.flow_rate(a).unwrap() - 2.0).abs() < 1e-9);
        assert!((net.flow_rate(b).unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rates_rebalance_after_completion() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        net.start_flow(&[l], 10.0);
        let b = net.start_flow(&[l], 100.0);
        net.advance_to_next_event(SimTime::ZERO, &mut NullObserver)
            .unwrap();
        assert!((net.flow_rate(b).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn observer_sees_all_bytes() {
        struct Tally(f64);
        impl FlowObserver for Tally {
            fn on_transfer(&mut self, _: LinkId, _: SimTime, _: f64, bytes: f64) {
                self.0 += bytes;
            }
        }
        let mut net = FlowNet::new();
        let a = net.add_link("a", 7.0);
        let b = net.add_link("b", 13.0);
        net.start_flow(&[a, b], 42.0);
        let mut tally = Tally(0.0);
        net.drain(&mut tally);
        // Counted once per link on the 2-hop route.
        assert!((tally.0 - 84.0).abs() < 1e-6);
    }

    #[test]
    fn bucketed_link_slows_after_burst() {
        // 10-byte bucket, burst 10 B/s, sustained 2 B/s. A 30-byte flow:
        // phase 1: 10/8 * ... bucket drains after 10/(10-2) = 1.25 s having
        // moved 12.5 bytes; remaining 17.5 bytes at 2 B/s = 8.75 s.
        let mut net = FlowNet::new();
        let l = net.add_bucketed_link("nvme", TokenBucket::new(10.0, 10.0, 2.0));
        net.start_flow(&[l], 30.0);
        let t = drain_time(&mut net);
        assert!((t - (1.25 + 8.75)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn bucket_refills_between_bursts() {
        let mut net = FlowNet::new();
        let l = net.add_bucketed_link("nvme", TokenBucket::new(10.0, 10.0, 2.0));
        net.start_flow(&[l], 10.0); // exactly drains the burst headroom? 10 bytes at 10 B/s = 1 s, draining 8 tokens
        let t1 = drain_time(&mut net);
        assert!((t1 - 1.0).abs() < 1e-6);
        // Idle 4 s -> refills 8 tokens.
        net.advance(SimTime::from_secs(t1), 4.0, &mut NullObserver);
        net.start_flow(&[l], 10.0);
        let t2 = drain_time(&mut net);
        assert!(
            (t2 - 1.0).abs() < 1e-6,
            "second burst should also be fast: {t2}"
        );
    }

    #[test]
    fn per_flow_cap_limits_rate() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let capped = net.start_flow_capped(&[l], 100.0, 10.0);
        let free = net.start_flow(&[l], 100.0);
        assert!((net.flow_rate(capped).unwrap() - 10.0).abs() < 1e-9);
        // The uncapped flow picks up the slack.
        assert!((net.flow_rate(free).unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn cap_larger_than_share_is_inert() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let a = net.start_flow_capped(&[l], 100.0, 1000.0);
        let b = net.start_flow(&[l], 100.0);
        assert!((net.flow_rate(a).unwrap() - 50.0).abs() < 1e-9);
        assert!((net.flow_rate(b).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "flow cap must be positive")]
    fn zero_cap_panics() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        net.start_flow_capped(&[l], 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "route must contain at least one link")]
    fn empty_route_panics() {
        let mut net = FlowNet::new();
        net.start_flow(&[], 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn unknown_link_panics() {
        let mut net = FlowNet::new();
        let mut other = FlowNet::new();
        let l = other.add_link("elsewhere", 1.0);
        net.start_flow(&[l], 1.0);
    }

    #[test]
    fn link_metadata_accessors() {
        let mut net = FlowNet::new();
        let l = net.add_link("nvlink", 25e9);
        assert_eq!(net.link_name(l), "nvlink");
        assert_eq!(net.link_capacity(l), 25e9);
        assert_eq!(net.link_count(), 1);
        assert_eq!(net.flow_count(), 0);
        net.start_flow(&[l], 1.0);
        assert!((net.link_demand(l) - 25e9).abs() < 1.0);
    }
}
