//! One module per paper artifact; each experiment renders its table or
//! figure as text.

pub mod extensions;
pub mod fleet;
pub mod micro;
pub mod offload;
pub mod resilience;
pub mod scorecard;
pub mod serving;
pub mod setup;
pub mod train;
