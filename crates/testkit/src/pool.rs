//! A scoped work-stealing thread pool built on `std::thread` only.
//!
//! The workspace's hermetic no-registry-deps invariant rules out `rayon`
//! and `crossbeam`, so parallel sweeps get their fan-out from this module
//! instead. The design is deliberately simple:
//!
//! * **Scoped** — workers are spawned inside [`std::thread::scope`], so
//!   closures may borrow from the caller's stack and nothing outlives the
//!   call.
//! * **Work-stealing** — each worker owns a deque of item indices seeded
//!   with a contiguous block of the input. Owners pop from the *front* of
//!   their deque; when empty they steal from the *back* of a victim's,
//!   which keeps block locality for the owner while letting fast workers
//!   drain stragglers.
//! * **Deterministic collection** — results are tagged with their input
//!   index and reassembled in input order, so callers observe the same
//!   output vector no matter how the items were scheduled or how many
//!   workers ran. (Determinism of the *values* is the closure's job: each
//!   invocation must depend only on its item.)
//! * **Panic propagation** — a panicking task poisons nothing: remaining
//!   items still run where possible, and the first worker panic is
//!   re-raised on the caller's thread via [`std::panic::resume_unwind`].
//!
//! ```
//! use zerosim_testkit::pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map(vec![1u64, 2, 3, 4, 5], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-width scoped thread pool; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// Creates a pool that fans work across `workers` threads. A width of
    /// 0 or 1 runs everything inline on the caller's thread (no spawn).
    pub fn new(workers: usize) -> Self {
        ThreadPool {
            workers: workers.max(1),
        }
    }

    /// Creates a pool as wide as the machine
    /// ([`std::thread::available_parallelism`], 1 if unknown).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel, returning results in input
    /// order. See [`ThreadPool::map_indexed`] for the indexed variant.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.map_indexed(items, |_, item| f(item))
    }

    /// Applies `f(index, item)` to every item, in parallel, returning
    /// results in input order regardless of worker count or scheduling.
    ///
    /// # Panics
    /// Re-raises the first worker panic on the calling thread after the
    /// scope joins.
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let width = self.workers.min(n);
        if width <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        // Items live in per-index cells so any worker can claim any index.
        let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();

        // Block-partitioned deques: worker w starts with indices
        // [w*n/width, (w+1)*n/width).
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..width)
            .map(|w| {
                let lo = w * n / width;
                let hi = (w + 1) * n / width;
                Mutex::new((lo..hi).collect())
            })
            .collect();

        let mut results: Vec<Option<(usize, R)>> = Vec::new();
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(width);
            for w in 0..width {
                let f = &f;
                let cells = &cells;
                let queues = &queues;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Own queue first (front = block order).
                        let mut idx = queues[w].lock().expect("pool queue poisoned").pop_front();
                        if idx.is_none() {
                            // Steal from the back of the others, round-robin
                            // starting at our right-hand neighbour.
                            for off in 1..width {
                                let victim = (w + off) % width;
                                if let Some(stolen) = queues[victim]
                                    .lock()
                                    .expect("pool queue poisoned")
                                    .pop_back()
                                {
                                    idx = Some(stolen);
                                    break;
                                }
                            }
                        }
                        let Some(i) = idx else { break };
                        let item = cells[i]
                            .lock()
                            .expect("pool item poisoned")
                            .take()
                            .expect("pool item claimed twice");
                        local.push((i, f(i, item)));
                    }
                    local
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(local) => results.extend(local.into_iter().map(Some)),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
        });

        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }

        // Reassemble in input order.
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for slot in results.into_iter().flatten() {
            let (i, r) = slot;
            assert!(out[i].is_none(), "pool produced index {i} twice");
            out[i] = Some(r);
        }
        out.into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("pool lost result for index {i}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = ThreadPool::new(4);
        let out: Vec<u32> = pool.map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_input_ordered_for_any_width() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for width in [1, 2, 3, 8, 128] {
            let pool = ThreadPool::new(width);
            assert_eq!(pool.map(items.clone(), |x| x * 3 + 1), expect, "w={width}");
        }
    }

    #[test]
    fn map_indexed_exposes_input_indices() {
        let pool = ThreadPool::new(3);
        let out = pool.map_indexed(vec!["a", "b", "c", "d"], |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = ThreadPool::new(7);
        let out = pool.map((0..500).collect::<Vec<i32>>(), |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One pathologically slow item at the front; with 4 workers the
        // remaining items must still all complete (stealing drains the
        // slow worker's block).
        let pool = ThreadPool::new(4);
        let out = pool.map((0..32).collect::<Vec<u64>>(), |x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<u64>>());
    }

    #[test]
    fn borrows_from_caller_stack() {
        let base = [10u64, 20, 30];
        let pool = ThreadPool::new(2);
        let out = pool.map(vec![0usize, 1, 2], |i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn zero_width_runs_inline() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.map(vec![1, 2], |x| x + 1), vec![2, 3]);
    }

    #[test]
    fn auto_pool_has_at_least_one_worker() {
        assert!(ThreadPool::auto().workers() >= 1);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map((0..16).collect::<Vec<u32>>(), |x| {
                if x == 9 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 9"), "unexpected payload: {msg}");
    }
}
