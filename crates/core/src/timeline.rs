//! Timeline analysis — the simulated analogue of the paper's nsys
//! application-level characterization (Fig. 5).

use std::collections::BTreeMap;

use zerosim_simkit::{SimTime, SpanLog};

/// Busy-time breakdown of one device track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackProfile {
    /// Track id (GPU/CPU resource index).
    pub track: u32,
    /// Total busy time per span label, sorted by label.
    pub by_label: Vec<(String, SimTime)>,
    /// Sum over labels.
    pub busy: SimTime,
    /// Track horizon (last span end − first span start).
    pub extent: SimTime,
}

impl TrackProfile {
    /// Idle fraction of the extent (the white gaps in Fig. 5). Clamped at
    /// zero: overlapping spans (compute + concurrent comm streams) can
    /// make the raw busy sum exceed the extent.
    pub fn idle_frac(&self) -> f64 {
        if self.extent.is_zero() {
            return 0.0;
        }
        (1.0 - self.busy.as_secs() / self.extent.as_secs()).max(0.0)
    }

    /// Busy time of one label ([`SimTime::ZERO`] when absent).
    pub fn label_time(&self, label: &str) -> SimTime {
        self.by_label
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, t)| *t)
            .unwrap_or(SimTime::ZERO)
    }
}

/// Summarizes a span log into per-track profiles.
pub fn profile_tracks(spans: &SpanLog) -> Vec<TrackProfile> {
    // One accumulator per track: label times and extent bounds live in
    // the same entry, so no track can ever hold one without the other
    // (the former two-map layout indexed a bounds map by track and would
    // panic if the maps drifted).
    let mut tracks: BTreeMap<u32, (BTreeMap<String, SimTime>, SimTime, SimTime)> = BTreeMap::new();
    for s in spans.spans() {
        let (by_label, start, end) = tracks
            .entry(s.track)
            .or_insert_with(|| (BTreeMap::new(), s.start, s.end));
        *by_label.entry(s.label.clone()).or_insert(SimTime::ZERO) += s.end - s.start;
        *start = (*start).min(s.start);
        *end = (*end).max(s.end);
    }
    tracks
        .into_iter()
        .map(|(track, (by_label, start, end))| {
            let busy: SimTime = by_label.values().copied().sum();
            TrackProfile {
                track,
                by_label: by_label.into_iter().collect(),
                busy,
                extent: end - start,
            }
        })
        .collect()
}

/// Serializes a span log as a Chrome trace (`chrome://tracing` /
/// Perfetto "JSON Array Format") so simulated timelines can be inspected
/// with the same tooling the paper used for its nsys captures.
///
/// Tracks become thread ids; span labels become event names.
pub fn to_chrome_trace(spans: &SpanLog) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("[");
    for (i, s) in spans.spans().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{}}}",
            esc(&s.label),
            s.start.as_micros(),
            (s.end - s.start).as_micros(),
            s.track
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_format() {
        let mut log = SpanLog::new();
        log.push(0, "gemm", SimTime::ZERO, SimTime::from_us(5.0));
        log.push(
            2,
            "all\"reduce",
            SimTime::from_us(5.0),
            SimTime::from_us(7.5),
        );
        let t = to_chrome_trace(&log);
        assert!(t.starts_with('[') && t.ends_with(']'));
        assert!(t.contains("\"name\":\"gemm\""));
        assert!(t.contains("\"tid\":2"));
        assert!(t.contains("\\\"reduce"), "quotes must be escaped: {t}");
        assert!(t.contains("\"dur\":5.000"));
        assert_eq!(to_chrome_trace(&SpanLog::new()), "[]");
    }

    #[test]
    fn profiles_accumulate_and_measure_idle() {
        let mut log = SpanLog::new();
        log.push(0, "gemm", SimTime::ZERO, SimTime::from_ms(6.0));
        log.push(
            0,
            "allreduce",
            SimTime::from_ms(8.0),
            SimTime::from_ms(10.0),
        );
        log.push(1, "gemm", SimTime::ZERO, SimTime::from_ms(1.0));
        let profiles = profile_tracks(&log);
        assert_eq!(profiles.len(), 2);
        let p0 = &profiles[0];
        assert_eq!(p0.track, 0);
        assert_eq!(p0.label_time("gemm"), SimTime::from_ms(6.0));
        assert_eq!(p0.busy, SimTime::from_ms(8.0));
        assert_eq!(p0.extent, SimTime::from_ms(10.0));
        assert!((p0.idle_frac() - 0.2).abs() < 1e-9);
        assert_eq!(p0.label_time("nope"), SimTime::ZERO);
    }

    #[test]
    fn empty_log_is_empty_profile() {
        assert!(profile_tracks(&SpanLog::new()).is_empty());
    }
}
