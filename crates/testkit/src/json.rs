//! Minimal JSON value, renderer, parser, and serialization traits.
//!
//! Replaces the workspace's `serde` + `serde_json` usage. The surface is
//! deliberately small: enough to round-trip ZeroSim's plain-data config
//! structs ([`crate::impl_json!`]) and to emit machine-readable reports.
//!
//! Numbers are IEEE-754 doubles (like JSON itself); integers round-trip
//! exactly up to 2⁵³, which covers every count and byte figure in the
//! simulator. Rendering is deterministic: object keys keep insertion
//! order and floats use Rust's shortest-round-trip formatting.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error produced while parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, with byte offset where relevant.
    pub message: String,
}

impl JsonError {
    fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup with a decode error on absence.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field '{key}'")))
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no inf/nan; emit null like serde_json's lossy mode
        // would reject — we choose null so rendering is total.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values render without the trailing `.0` so object
        // keys like counts look natural. Guarded |n| < 2^53, so the
        // i64 conversion is exact.
        #[allow(clippy::cast_possible_truncation)]
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(JsonError::new(format!(
                "unexpected '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            // Surrogates are replaced; the workspace never
                            // emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("bad number '{text}' at byte {start}")))
    }
}

// ---------------------------------------------------------------------
// traits
// ---------------------------------------------------------------------

/// Serializes a value to a [`Json`] tree (the in-house `Serialize`).
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;

    /// Convenience: render directly to text.
    fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

/// Decodes a value from a [`Json`] tree (the in-house `Deserialize`).
pub trait FromJson: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_json(value: &Json) -> Result<Self, JsonError>;

    /// Convenience: parse text and decode.
    fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

macro_rules! impl_json_number {
    ($($t:ty),+) => {
        $(
            impl ToJson for $t {
                fn to_json(&self) -> Json {
                    Json::Num(*self as f64)
                }
            }
            impl FromJson for $t {
                // JSON numbers are f64 by definition; decoding to a
                // narrower numeric type is saturating-by-contract.
                #[allow(clippy::cast_possible_truncation)]
                fn from_json(value: &Json) -> Result<Self, JsonError> {
                    value
                        .as_f64()
                        .map(|n| n as $t)
                        .ok_or_else(|| JsonError::new(concat!("expected number for ", stringify!($t))))
                }
            }
        )+
    };
}

impl_json_number!(f64, f32, u64, u32, usize, i64, i32, isize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::new("expected bool")),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            v => T::from_json(v).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::new("expected 2-element array")),
        }
    }
}

/// Implements [`ToJson`] and [`FromJson`] for a named-field struct — the
/// replacement for `#[derive(Serialize, Deserialize)]`:
///
/// ```
/// #[derive(Debug, Clone, PartialEq)]
/// pub struct Knobs { pub rate: f64, pub lanes: usize }
///
/// zerosim_testkit::impl_json! {
///     struct Knobs { rate, lanes }
/// }
///
/// use zerosim_testkit::{FromJson, ToJson};
/// let k = Knobs { rate: 1.5, lanes: 4 };
/// let round = Knobs::from_json_str(&k.to_json_string()).unwrap();
/// assert_eq!(k, round);
/// ```
#[macro_export]
macro_rules! impl_json {
    ($(struct $name:ident { $($field:ident),+ $(,)? })+) => {
        $(
            impl $crate::json::ToJson for $name {
                fn to_json(&self) -> $crate::json::Json {
                    $crate::json::Json::Obj(vec![
                        $((stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)),)+
                    ])
                }
            }

            impl $crate::json::FromJson for $name {
                fn from_json(value: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                    Ok($name {
                        $($field: $crate::json::FromJson::from_json(value.field(stringify!($field))?)?,)+
                    })
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::parse("  42 ").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = Json::Str("a\"b\\c\nd\tе".to_string());
        let rendered = s.render();
        assert_eq!(Json::parse(&rendered).unwrap(), s);
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".to_string())
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            (
                "caps".into(),
                Json::Arr(vec![Json::Num(1e9), Json::Num(2.5)]),
            ),
            (
                "meta".into(),
                Json::Obj(vec![("name".into(), Json::Str("roce".into()))]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        rate: f64,
        lanes: usize,
        label: String,
        parts: Vec<(String, f64)>,
    }

    impl_json! {
        struct Demo { rate, lanes, label, parts }
    }

    #[test]
    fn struct_macro_round_trips() {
        let d = Demo {
            rate: 0.93 * 25e9,
            lanes: 16,
            label: "roce/nic0".into(),
            parts: vec![("params".into(), 2.0e9), ("grads".into(), 2.0e9)],
        };
        let text = d.to_json_string();
        let back = Demo::from_json_str(&text).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn missing_field_is_a_decode_error() {
        let err = Demo::from_json_str("{\"rate\":1}").unwrap_err();
        assert!(err.message.contains("missing field"), "{err}");
    }
}
