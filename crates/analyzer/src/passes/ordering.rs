//! ZL003 — phase ordering / happens-before legality.
//!
//! The rules are schedule-agnostic: an edge is illegal only when *no*
//! valid execution schedule could satisfy it. A stage processes its
//! micro-batches in ascending order, so same-stage deps may only point
//! at earlier (or the same) micro-steps. Cross-stage deps within one
//! micro-step must respect forward → backward → step. Cross-stage deps
//! across micro-steps are free — backward of micro 0 waiting on the
//! forward of micro 3 is exactly what a non-pipelined schedule does, and
//! 1F1B makes forward of micro 1 wait on backward of micro 0. Two
//! stages are special: nothing except step-phase work may depend on a
//! step op (the weight update is iteration-final), and input-phase ops
//! may only depend on other input ops (the input pipeline precedes the
//! iteration). Checkpoint plans must stay inside the checkpoint phase.
//!
//! Serving plans reuse the same machinery with `micro` reinterpreted as
//! the decode-step index: ascending-micro ordering *is* autoregressive
//! token order, and the pass additionally checks decode-step effect
//! semantics — a KV-cache append or token emission must descend from its
//! own step's forward compute (a cache write or emitted token with no
//! compute behind it is meaningless in any schedule).
//!
//! `WorkloadPlan::validate` checks a subset of this from emission order;
//! this pass checks the actual dependency edges.

use zerosim_hw::MemLoc;
use zerosim_strategies::{PhaseStage, PlanOp, WorkloadKind};

use crate::diag::{LintCode, Site};
use crate::graph::Ancestors;
use crate::pass::{Artifacts, Pass, Sink};

/// ZL003 (see module docs).
#[derive(Debug)]
pub struct PhaseOrderingPass;

/// Stage rank within one micro-step; later stages may depend on earlier
/// ones, never the reverse.
fn rank(stage: PhaseStage) -> u8 {
    match stage {
        PhaseStage::Input => 0,
        PhaseStage::Forward | PhaseStage::Prefill => 1,
        PhaseStage::Backward | PhaseStage::Decode => 2,
        PhaseStage::Step => 3,
        PhaseStage::Checkpoint => 4,
    }
}

fn stage_name(stage: PhaseStage) -> &'static str {
    match stage {
        PhaseStage::Input => "input",
        PhaseStage::Forward => "forward",
        PhaseStage::Backward => "backward",
        PhaseStage::Step => "step",
        PhaseStage::Checkpoint => "checkpoint",
        PhaseStage::Prefill => "prefill",
        PhaseStage::Decode => "decode",
    }
}

fn kind_name(kind: WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::Iteration => "iteration",
        WorkloadKind::Checkpoint => "checkpoint",
        WorkloadKind::Prefill => "prefill",
        WorkloadKind::Decode => "decode",
    }
}

impl Pass for PhaseOrderingPass {
    fn code(&self) -> LintCode {
        LintCode::PhaseOrdering
    }

    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>) {
        let Some(plan) = art.plan else {
            return;
        };
        let nodes = plan.nodes();

        // Plan-kind rules: each workload kind owns a set of legal stages,
        // and only training iterations may update weights.
        let kind = plan.kind();
        for (i, n) in nodes.iter().enumerate() {
            if !kind.allowed_stages().contains(&n.phase.stage) {
                sink.report(
                    LintCode::PhaseOrdering,
                    Site::PlanOp(i),
                    format!(
                        "{} plan contains a {}-phase op",
                        kind_name(kind),
                        stage_name(n.phase.stage)
                    ),
                    "move the op into a plan of the matching workload kind".to_string(),
                );
            }
            if kind != WorkloadKind::Iteration && matches!(n.op, PlanOp::OptimizerStep { .. }) {
                sink.report(
                    LintCode::PhaseOrdering,
                    Site::PlanOp(i),
                    format!("{} plan runs an optimizer step", kind_name(kind)),
                    "weight updates belong to iteration plans".to_string(),
                );
            }
            if n.phase.stage == PhaseStage::Input && n.phase.micro != 0 {
                sink.report(
                    LintCode::PhaseOrdering,
                    Site::PlanOp(i),
                    format!("input-phase op labeled micro-step {}", n.phase.micro),
                    "the input pipeline precedes the first micro-step".to_string(),
                );
            }
        }

        // Dependency-edge legality.
        for (i, n) in nodes.iter().enumerate() {
            for d in &n.deps {
                let j = d.index();
                let (pi, pj) = (n.phase, nodes[j].phase);
                if pj.stage == PhaseStage::Step && pi.stage != PhaseStage::Step {
                    sink.report(
                        LintCode::PhaseOrdering,
                        Site::PlanOp(i),
                        format!(
                            "{}-phase op depends on step-phase op {j}",
                            stage_name(pi.stage)
                        ),
                        "the weight update is iteration-final; nothing inside the \
                         iteration may wait on it"
                            .to_string(),
                    );
                } else if pi.stage == PhaseStage::Input && pj.stage != PhaseStage::Input {
                    sink.report(
                        LintCode::PhaseOrdering,
                        Site::PlanOp(i),
                        format!(
                            "input-phase op depends on {}-phase op {j}",
                            stage_name(pj.stage)
                        ),
                        "the input pipeline precedes the iteration".to_string(),
                    );
                } else if pj.stage == pi.stage && pj.micro > pi.micro {
                    sink.report(
                        LintCode::PhaseOrdering,
                        Site::PlanOp(i),
                        format!(
                            "{}-phase op of micro-step {} depends on op {j} of later \
                             micro-step {}",
                            stage_name(pi.stage),
                            pi.micro,
                            pj.micro
                        ),
                        "a stage processes its micro-batches in ascending order".to_string(),
                    );
                } else if pj.micro == pi.micro && rank(pj.stage) > rank(pi.stage) {
                    sink.report(
                        LintCode::PhaseOrdering,
                        Site::PlanOp(i),
                        format!(
                            "{}-phase op depends on {}-phase op {j} of the same micro-step",
                            stage_name(pi.stage),
                            stage_name(pj.stage)
                        ),
                        "within a micro-step the order is forward -> backward -> step".to_string(),
                    );
                }
            }
        }

        // Every optimizer step must be reachable from gradient work.
        let has_backward = nodes.iter().any(|n| n.phase.stage == PhaseStage::Backward);
        if has_backward {
            let anc = Ancestors::compute(
                |i| nodes[i].deps.iter().map(|d| d.index()).collect(),
                nodes.len(),
            );
            for (i, n) in nodes.iter().enumerate() {
                if !matches!(n.op, PlanOp::OptimizerStep { .. }) {
                    continue;
                }
                let fed = (0..nodes.len())
                    .any(|j| nodes[j].phase.stage == PhaseStage::Backward && anc.is_ancestor(j, i));
                if !fed {
                    sink.report(
                        LintCode::PhaseOrdering,
                        Site::PlanOp(i),
                        "optimizer step does not depend on any backward-phase op".to_string(),
                        "an update without gradients is a no-op; wire the dependency".to_string(),
                    );
                }
            }
        }

        // Decode-step / token-emission semantics: in serving plans every
        // effect of a step — a KV-cache append or a token emission (the
        // device-to-host copy of sampled token ids) — must descend from
        // that same step's forward compute. `micro` is the decode-step
        // index, so "same micro" is "same token position".
        if kind.is_serving() {
            let anc = Ancestors::compute(
                |i| nodes[i].deps.iter().map(|d| d.index()).collect(),
                nodes.len(),
            );
            for (i, n) in nodes.iter().enumerate() {
                let (what, help) = match &n.op {
                    PlanOp::KvAppend { .. } => (
                        "KV-cache append",
                        "a cache write with no compute behind it stores nothing; \
                         wire it to the step's forward pass",
                    ),
                    PlanOp::TierTransfer {
                        src: MemLoc::Gpu(_),
                        dst: MemLoc::Cpu(_),
                        ..
                    } if n.phase.stage != PhaseStage::Input => (
                        "token emission",
                        "a token cannot leave the device before its step's forward \
                         pass sampled it",
                    ),
                    _ => continue,
                };
                let fed = (0..nodes.len()).any(|j| {
                    matches!(nodes[j].op, PlanOp::LayerCompute { .. })
                        && nodes[j].phase.micro == n.phase.micro
                        && anc.is_ancestor(j, i)
                });
                if !fed {
                    sink.report(
                        LintCode::PhaseOrdering,
                        Site::PlanOp(i),
                        format!(
                            "{what} of decode step {} does not depend on that step's \
                             forward compute",
                            n.phase.micro
                        ),
                        help.to_string(),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use crate::pass::{AnalysisReport, PassManager};
    use zerosim_hw::{Cluster, ClusterSpec, GpuId};
    use zerosim_strategies::{IterPlan, OptimizerDevice};

    fn run(plan: &IterPlan) -> AnalysisReport {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(PhaseOrderingPass));
        pm.run(&Artifacts::new(&cluster).with_plan(plan))
    }

    fn g0() -> GpuId {
        GpuId { node: 0, gpu: 0 }
    }

    #[test]
    fn forward_backward_step_chain_is_clean() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Forward, 0);
        let f = plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        plan.set_phase(PhaseStage::Backward, 0);
        let b = plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 2e12,
                label: "gemm",
            },
            &[f],
        );
        plan.set_phase(PhaseStage::Step, 0);
        plan.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(g0()),
                params: 1e9,
            },
            &[b],
        );
        assert!(run(&plan).is_clean());
    }

    #[test]
    fn backward_before_forward_fires() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        let b = plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        plan.set_phase(PhaseStage::Forward, 0);
        plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[b],
        );
        let r = run(&plan);
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.diagnostics[0].site, Site::PlanOp(1));
        assert!(r.diagnostics[0]
            .message
            .contains("forward-phase op depends on backward"));
    }

    #[test]
    fn cross_stage_cross_micro_deps_are_legal_in_both_directions() {
        // 1F1B: forward of micro 1 depending on backward of micro 0 is
        // fine; so is the non-pipelined serialization where backward of
        // micro 0 waits for the forward of the *last* micro-batch.
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        let b0 = plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        plan.set_phase(PhaseStage::Forward, 1);
        plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[b0],
        );
        assert!(run(&plan).is_clean());

        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Forward, 3);
        let f3 = plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        plan.set_phase(PhaseStage::Backward, 0);
        plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[f3],
        );
        assert!(run(&plan).is_clean());
    }

    #[test]
    fn same_stage_dep_on_later_micro_fires() {
        // A stage consumes micro-batches in order: forward of micro 0
        // waiting on forward of micro 1 is unsatisfiable in any schedule.
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Forward, 1);
        let f1 = plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        plan.set_phase(PhaseStage::Forward, 0);
        plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[f1],
        );
        let r = run(&plan);
        assert_eq!(r.deny_count(), 1);
        assert!(r.diagnostics[0].message.contains("later micro-step"));
    }

    #[test]
    fn nothing_inside_the_iteration_may_wait_on_the_step() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        let b = plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        plan.set_phase(PhaseStage::Step, 0);
        let s = plan.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(g0()),
                params: 1e9,
            },
            &[b],
        );
        plan.set_phase(PhaseStage::Forward, 1);
        plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[s],
        );
        let r = run(&plan);
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.diagnostics[0].site, Site::PlanOp(2));
        assert!(r.diagnostics[0].message.contains("step-phase op"));
    }

    #[test]
    fn unfed_optimizer_step_fires() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        plan.set_phase(PhaseStage::Step, 0);
        plan.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(g0()),
                params: 1e9,
            },
            &[],
        );
        let r = run(&plan);
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.diagnostics[0].site, Site::PlanOp(1));
        assert!(r.diagnostics[0].message.contains("optimizer step"));
    }

    #[test]
    fn checkpoint_kind_rules() {
        let mut plan = IterPlan::new_checkpoint();
        plan.set_phase(PhaseStage::Forward, 0);
        plan.push(
            PlanOp::LayerCompute {
                gpu: g0(),
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        let r = run(&plan);
        assert_eq!(r.deny_count(), 1);
        assert!(r.diagnostics[0].message.contains("checkpoint plan"));
    }
}
