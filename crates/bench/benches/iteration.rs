//! Simulation cost per training iteration for each strategy — the wall
//! clock the repro harness pays per configuration.

use zerosim_core::{RunConfig, TrainingSim};
use zerosim_hw::ClusterSpec;
use zerosim_model::GptConfig;
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};
use zerosim_testkit::bench::Bench;

fn bench_iterations(c: &mut Bench) {
    let mut group = c.benchmark_group("iteration_sim");
    group.sample_size(10);
    let model = GptConfig::paper_model_with_params(1.4);
    for (name, strategy, nodes) in [
        ("ddp_single", Strategy::Ddp, 1usize),
        ("megatron_single", Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (
            "zero3_single",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            "zero3_dual",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            "zero2_cpu_offload",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
                let opts = if nodes == 1 {
                    TrainOptions::single_node()
                } else {
                    TrainOptions::dual_node()
                };
                sim.run(&strategy, &model, &opts, &RunConfig::quick())
                    .unwrap()
                    .throughput_tflops()
            });
        });
    }
    group.finish();
}

zerosim_testkit::bench_main!(bench_iterations);
