//! PyTorch Distributed Data-Parallel baseline.
//!
//! Every GPU holds a full replica (params + grads + optimizer states);
//! gradients are all-reduced in buckets overlapped with the backward pass;
//! the optimizer runs on-GPU over the full parameter set.

use zerosim_collectives::{emit_collective_capped, CollectiveKind, CommGroup};
use zerosim_model::ModelStates;
use zerosim_simkit::{Dag, DagBuilder, TaskId};

use crate::builders::IterCtx;
use crate::memory::MemoryPlan;

/// Builds the memory plan for DDP.
pub(crate) fn memory_plan(ctx: &IterCtx<'_>) -> MemoryPlan {
    let p = ctx.model.num_params();
    let states = ModelStates::for_params(p);
    let act = act_bytes(ctx);
    let per_gpu = states.total() + act + ctx.calib.gpu_fixed_bytes;
    let n = ctx.opts.num_gpus(ctx.cluster) as f64;
    MemoryPlan {
        per_gpu_bytes: per_gpu,
        total_gpu_bytes: per_gpu * n,
        per_node_cpu_bytes: ctx.calib.host_base_bytes,
        total_cpu_bytes: ctx.calib.host_base_bytes * ctx.opts.nodes as f64,
        nvme_bytes: 0.0,
        gpu_breakdown: vec![
            ("params_fp16".into(), states.params),
            ("grads_fp16".into(), states.grads),
            ("optimizer_fp32".into(), states.optimizer),
            ("activations".into(), act),
            ("fixed".into(), ctx.calib.gpu_fixed_bytes),
        ],
    }
}

fn act_bytes(ctx: &IterCtx<'_>) -> f64 {
    // Plain DDP scripts do not enable activation checkpointing.
    let m = ctx.model;
    ctx.calib.act_coeff_nockpt
        * m.num_layers as f64
        * m.seq_len as f64
        * ctx.opts.per_gpu_batch as f64
        * m.hidden_size as f64
        * 2.0
}

/// Builds one DDP training iteration.
pub(crate) fn build_iteration(ctx: &IterCtx<'_>) -> Dag {
    let gpus = ctx.opts.gpus(ctx.cluster);
    let group = CommGroup::new(gpus.clone());
    let tokens_gpu = (ctx.opts.per_gpu_batch * ctx.model.seq_len) as f64;
    let layers = ctx.model.num_layers;
    let bucket = ctx.comm_bucket_layers();

    let mut dag = DagBuilder::new();
    let prologue = ctx.emit_iteration_prologue(&mut dag);
    let mut prev: Vec<TaskId> = gpus
        .iter()
        .map(|g| ctx.emit_input_h2d(&mut dag, *g, &[prologue]))
        .collect();

    let fwd_flops = ctx.layer_fwd_flops(tokens_gpu, 1);
    let vocab_flops = ctx.embedding_fwd_flops(tokens_gpu, 1);
    let mut comm_chain: Vec<TaskId> = Vec::new();
    for micro in 0..ctx.opts.grad_accum {
        // Gradients accumulate locally; only the last micro-step syncs
        // (`torch.nn.parallel.DistributedDataParallel.no_sync`).
        let sync = micro + 1 == ctx.opts.grad_accum;

        // Forward.
        for _l in 0..layers {
            for (i, g) in gpus.iter().enumerate() {
                prev[i] = ctx.emit_layer_compute(&mut dag, *g, fwd_flops, "gemm", &[prev[i]]);
            }
        }
        // Vocabulary projection + loss.
        for (i, g) in gpus.iter().enumerate() {
            prev[i] = ctx.emit_layer_compute(&mut dag, *g, vocab_flops, "gemm", &[prev[i]]);
        }

        // Backward with bucketed, overlapped gradient all-reduce.
        let mut remaining = layers;
        while remaining > 0 {
            let chunk = bucket.min(remaining);
            remaining -= chunk;
            for _l in 0..chunk {
                for (i, g) in gpus.iter().enumerate() {
                    prev[i] =
                        ctx.emit_layer_compute(&mut dag, *g, 2.0 * fwd_flops, "gemm", &[prev[i]]);
                }
            }
            if !sync {
                continue;
            }
            let grad_bytes = 2.0 * ctx.model.layer_params() * chunk as f64;
            let mut deps: Vec<TaskId> = prev.clone();
            deps.extend(comm_chain.last().copied());
            let h = emit_collective_capped(
                &mut dag,
                ctx.cluster,
                &group,
                CollectiveKind::AllReduce,
                grad_bytes,
                &deps,
                ctx.calib.nccl_internode_cap,
            );
            comm_chain.push(h.done);
        }
    }
    // Embedding gradients.
    let mut deps: Vec<TaskId> = prev.clone();
    deps.extend(comm_chain.last().copied());
    let h = emit_collective_capped(
        &mut dag,
        ctx.cluster,
        &group,
        CollectiveKind::AllReduce,
        2.0 * ctx.model.embedding_params(),
        &deps,
        ctx.calib.nccl_internode_cap,
    );
    comm_chain.push(h.done);

    // Optimizer: full parameter set on every GPU.
    let p = ctx.model.num_params();
    let last_comm = *comm_chain.last().expect("at least one bucket");
    for (i, g) in gpus.iter().enumerate() {
        ctx.emit_gpu_adam(&mut dag, *g, p, &[prev[i], last_comm]);
    }
    dag.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;
    use crate::options::TrainOptions;
    use zerosim_hw::{Cluster, ClusterSpec};
    use zerosim_model::GptConfig;
    use zerosim_simkit::{DagEngine, SimTime};

    #[test]
    fn ddp_iteration_runs_and_is_compute_dominated() {
        let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let dag = build_iteration(&ctx);
        let mut eng = DagEngine::new(cluster.resource_slots());
        let out = eng
            .run(cluster.net_mut(), &dag, SimTime::ZERO, None)
            .unwrap();
        let secs = out.makespan().as_secs();
        // The 1.4 B model iterates in hundreds of milliseconds.
        assert!(secs > 0.1 && secs < 1.5, "iteration took {secs}s");
    }

    #[test]
    fn memory_plan_is_16_bytes_per_param_plus_overheads() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let plan = memory_plan(&ctx);
        let p = model.num_params();
        assert!(plan.per_gpu_bytes > 16.0 * p);
        assert!(plan.fits(&cluster), "1.4B DDP must fit");
        let big = GptConfig::paper_model(55); // 2.9 B
        let ctx_big = IterCtx {
            cluster: &cluster,
            model: &big,
            opts: &opts,
            calib: &calib,
        };
        assert!(
            !memory_plan(&ctx_big).fits(&cluster),
            "2.9B DDP must not fit"
        );
    }
}
