//! Arena DAG-engine scorecard (DESIGN.md §11): arena vs. reference
//! executor cost on the golden dozen paper configurations, plus an
//! engine-hot-path stress DAG that isolates the executor from the flow
//! solver the two modes share.
//!
//! Emits `BENCH_engine.json` at the repository root with:
//!
//! * `golden`: engine-only iterations/sec per mode over the 12 golden
//!   lowered DAGs (plan → lower once, then `run_iterations` on a fresh
//!   cluster per mode), and the wall-clock ratio;
//! * `hot_path`: the same comparison on a solver- and span-free layered
//!   delay DAG where the executor's own bookkeeping is the entire cost;
//! * `allocs`: heap allocations per engine iteration in each mode (counted
//!   by a wrapping global allocator) and the reduction — the
//!   hardware-invariant measure of the arena refactor, like the solver
//!   bench's links-per-solve;
//! * `digests_equal`: the full golden-dozen characterization pipeline run
//!   under both [`EngineMode`]s must produce identical
//!   `TrainingReport::digest()` vectors.
//!
//! Wall ratios are honest for this machine (`cores` is recorded); the
//! gated floors are `digests_equal` and the allocation reduction, which
//! do not depend on machine speed or background load.
//!
//! Run with `cargo bench -p zerosim-bench --bench engine_arena`;
//! `--quick` (or `ZEROSIM_BENCH_QUICK=1`) drops the iteration counts for
//! CI smoke.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use zerosim_bench::data::golden_specs;
use zerosim_core::SweepSpec;
use zerosim_hw::Cluster;
use zerosim_simkit::{DagBuilder, DagEngine, EngineMode, SimTime};
use zerosim_strategies::{lower, IterCtx, LoweredPlan, StrategyPlan};
use zerosim_testkit::json::Json;

/// Counts every heap allocation while delegating to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Builds the cluster and once-lowered iteration plan for one golden spec.
fn lowered_for(spec: &SweepSpec) -> (Cluster, LoweredPlan) {
    let mut cluster = Cluster::new(spec.cluster.clone()).expect("golden cluster valid");
    for members in &spec.volumes {
        cluster.create_volume(members.clone());
    }
    let ctx = IterCtx {
        cluster: &cluster,
        model: &spec.model,
        opts: &spec.opts,
        calib: &spec.calibration,
    };
    let plan = spec
        .strategy
        .plan_iteration(&ctx)
        .expect("golden plan valid");
    let mut lowered = lower(&plan, &cluster, &spec.calibration).expect("golden plan lowers");
    lowered.stamp(spec.opts.jitter_seed);
    (cluster, lowered)
}

/// Engine-only execution of one golden spec: `iters` back-to-back runs of
/// its lowered DAG on a fresh cluster, shadow off. One warm-up run before
/// the measured window pays each mode's one-time setup (the arena's
/// structure ingest, lazily grown buffers) so the window sees the
/// steady state both modes actually run at. Returns (wall seconds,
/// allocations) for the measured `run_iterations` call alone.
fn run_engine_only(spec: &SweepSpec, mode: EngineMode, iters: usize) -> (f64, u64) {
    let (mut cluster, lowered) = lowered_for(spec);
    let mut engine = DagEngine::new(cluster.resource_slots());
    engine.set_mode(mode);
    engine.set_shadow_verify(false);
    let dag = lowered.dag();
    engine
        .run_iterations(cluster.net_mut(), dag, SimTime::ZERO, 1, None)
        .expect("golden dag warms up");
    let a0 = allocs();
    let t0 = Instant::now();
    engine
        .run_iterations(cluster.net_mut(), dag, SimTime::ZERO, iters, None)
        .expect("golden dag runs");
    (t0.elapsed().as_secs_f64(), allocs() - a0)
}

/// A solver-free, span-free layered DAG at golden-dozen scale: `layers`
/// waves of `width` timed delays with a marker join per wave. No flows
/// means the max-min solver — cost shared by both executors — is out of
/// the picture, and delays/markers carry no labels, so the timeline log
/// (whose per-span `String` clone is likewise shared) stays silent too:
/// what remains is exactly the executor's own bookkeeping.
fn hot_path_dag(layers: usize, width: usize) -> zerosim_simkit::Dag {
    let mut b = DagBuilder::new();
    let mut prev_join = None;
    for layer in 0..layers {
        let deps: Vec<_> = prev_join.into_iter().collect();
        let tasks: Vec<_> = (0..width)
            .map(|i| {
                let us = 10.0 + ((layer * width + i) % 17) as f64;
                b.delay(SimTime::from_us(us), &deps)
            })
            .collect();
        prev_join = Some(b.marker(&tasks));
    }
    b.build()
}

fn run_hot_path(mode: EngineMode, dag: &zerosim_simkit::Dag, iters: usize) -> (f64, u64) {
    let mut net = zerosim_simkit::FlowNet::new();
    let mut engine = DagEngine::new(vec![]);
    engine.set_mode(mode);
    engine.set_shadow_verify(false);
    engine
        .run_iterations(&mut net, dag, SimTime::ZERO, 1, None)
        .expect("hot-path dag warms up");
    let a0 = allocs();
    let t0 = Instant::now();
    engine
        .run_iterations(&mut net, dag, SimTime::ZERO, iters, None)
        .expect("hot-path dag runs");
    (t0.elapsed().as_secs_f64(), allocs() - a0)
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("ZEROSIM_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let specs = golden_specs();

    // Part 1: digest equality of the full pipeline under both engines.
    let arena_runs: Vec<_> = specs
        .iter()
        .map(|s| s.clone().with_engine(EngineMode::Arena).execute())
        .collect::<Result<_, _>>()
        .expect("golden configs run on arena engine");
    let reference_runs: Vec<_> = specs
        .iter()
        .map(|s| s.clone().with_engine(EngineMode::Reference).execute())
        .collect::<Result<_, _>>()
        .expect("golden configs run on reference engine");
    let digests_equal = arena_runs
        .iter()
        .zip(&reference_runs)
        .all(|(a, r)| a.digest == r.digest);
    assert!(
        digests_equal,
        "arena and reference engines must digest identically on the golden dozen"
    );

    // Part 2: engine-only iterations/sec over the golden lowered DAGs.
    let golden_iters = if quick { 4 } else { 20 };
    let mut golden_ref_s = 0.0;
    let mut golden_arena_s = 0.0;
    let mut golden_ref_allocs = 0u64;
    let mut golden_arena_allocs = 0u64;
    for spec in &specs {
        let (w, a) = run_engine_only(spec, EngineMode::Reference, golden_iters);
        golden_ref_s += w;
        golden_ref_allocs += a;
        let (w, a) = run_engine_only(spec, EngineMode::Arena, golden_iters);
        golden_arena_s += w;
        golden_arena_allocs += a;
    }
    let total_golden_iters = (golden_iters * specs.len()) as f64;
    let golden_ref_ips = total_golden_iters / golden_ref_s;
    let golden_arena_ips = total_golden_iters / golden_arena_s;
    let golden_ratio = golden_arena_ips / golden_ref_ips;
    println!("golden dozen, engine only ({golden_iters} iters/config, shadow off)");
    println!("  reference {golden_ref_s:>8.3} s  {golden_ref_ips:>8.1} iters/s");
    println!("  arena     {golden_arena_s:>8.3} s  {golden_arena_ips:>8.1} iters/s  ({golden_ratio:.2}x)");

    // Part 3: the engine hot path, solver excluded.
    let (layers, width, hot_iters) = if quick { (32, 48, 6) } else { (48, 64, 30) };
    let dag = hot_path_dag(layers, width);
    let (hot_ref_s, hot_ref_allocs) = run_hot_path(EngineMode::Reference, &dag, hot_iters);
    let (hot_arena_s, hot_arena_allocs) = run_hot_path(EngineMode::Arena, &dag, hot_iters);
    let hot_ref_ips = hot_iters as f64 / hot_ref_s;
    let hot_arena_ips = hot_iters as f64 / hot_arena_s;
    let hot_ratio = hot_arena_ips / hot_ref_ips;
    println!(
        "hot path: {layers}x{width} layered delay dag ({} tasks), {hot_iters} iters",
        dag.len()
    );
    println!("  reference {hot_ref_s:>8.3} s  {hot_ref_ips:>8.1} iters/s");
    println!("  arena     {hot_arena_s:>8.3} s  {hot_arena_ips:>8.1} iters/s  ({hot_ratio:.2}x)");

    // Part 4: executor bookkeeping allocations per iteration — the
    // hardware-invariant scorecard of the arena refactor, measured on the
    // span-free hot path so shared costs (span `String` clones, solver
    // state) cannot mask it. Golden allocations are reported alongside for
    // context; they are dominated by the shared span log.
    let hot_ref_allocs_per_iter = hot_ref_allocs as f64 / hot_iters as f64;
    let hot_arena_allocs_per_iter = hot_arena_allocs as f64 / hot_iters as f64;
    let alloc_reduction = hot_ref_allocs_per_iter / hot_arena_allocs_per_iter.max(1.0);
    let golden_ref_allocs_per_iter = golden_ref_allocs as f64 / total_golden_iters;
    let golden_arena_allocs_per_iter = golden_arena_allocs as f64 / total_golden_iters;
    println!(
        "bookkeeping allocations/iteration: reference {hot_ref_allocs_per_iter:.0}, arena {hot_arena_allocs_per_iter:.0} ({alloc_reduction:.1}x fewer)"
    );
    println!(
        "golden allocations/iteration (span-log dominated, shared): reference {golden_ref_allocs_per_iter:.0}, arena {golden_arena_allocs_per_iter:.0}"
    );

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("engine_arena".into())),
        ("quick".into(), Json::Bool(quick)),
        ("cores".into(), num(cores as f64)),
        ("digests_equal".into(), Json::Bool(digests_equal)),
        (
            "golden".into(),
            Json::Obj(vec![
                ("configs".into(), num(specs.len() as f64)),
                ("iters_per_config".into(), num(golden_iters as f64)),
                ("reference_wall_s".into(), num(golden_ref_s)),
                ("arena_wall_s".into(), num(golden_arena_s)),
                ("reference_iters_per_sec".into(), num(golden_ref_ips)),
                ("arena_iters_per_sec".into(), num(golden_arena_ips)),
                ("iters_per_sec_ratio".into(), num(golden_ratio)),
            ]),
        ),
        (
            "hot_path".into(),
            Json::Obj(vec![
                ("tasks".into(), num(dag.len() as f64)),
                ("iters".into(), num(hot_iters as f64)),
                ("reference_wall_s".into(), num(hot_ref_s)),
                ("arena_wall_s".into(), num(hot_arena_s)),
                ("reference_iters_per_sec".into(), num(hot_ref_ips)),
                ("arena_iters_per_sec".into(), num(hot_arena_ips)),
                ("iters_per_sec_ratio".into(), num(hot_ratio)),
            ]),
        ),
        (
            "allocs".into(),
            Json::Obj(vec![
                ("reference_per_iter".into(), num(hot_ref_allocs_per_iter)),
                ("arena_per_iter".into(), num(hot_arena_allocs_per_iter)),
                ("reduction".into(), num(alloc_reduction)),
                (
                    "golden_reference_per_iter".into(),
                    num(golden_ref_allocs_per_iter),
                ),
                (
                    "golden_arena_per_iter".into(),
                    num(golden_arena_allocs_per_iter),
                ),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");

    assert!(
        alloc_reduction >= 5.0,
        "allocations-per-iteration reduction {alloc_reduction:.1}x is below the 5x floor"
    );
}
