//! ZL009 — static step-time lower bounds from the lowered DAG.
//!
//! Walks the lowered task graph's critical path, pricing every task at a
//! rate no schedule can beat, and emits a [`StepTimeBound`] verdict:
//!
//! * **Compute** is priced at its calibrated duration discounted by the
//!   jitter half-width (`1 - compute_jitter_frac`), the fastest draw the
//!   stamping stage can produce.
//! * **Transfers** are priced twice: at *wire speed-of-light* — startup
//!   latency plus bytes over the slowest hop's physical rate, contention
//!   ignored — and at the *protocol ceiling*, which additionally applies
//!   the per-flow engine-efficiency cap. The protocol path is the
//!   tighter bound and the one compared against simulated iteration
//!   time; the gap between the two is the statically-provable cost of
//!   the protocol ceilings the paper measured.
//!
//! Both are true lower bounds: the simulator adds contention (max-min
//! fair sharing), resource-slot queueing, and upward jitter on top.
//! A non-finite price (a transfer routed across a zero-capacity link)
//! is a deny — the plan can never finish, so no bound exists.

use zerosim_simkit::TaskKind;

use crate::diag::{LintCode, Site};
use crate::pass::{Artifacts, Pass, Sink, StepTimeBound};

/// ZL009 (see module docs).
#[derive(Debug)]
pub struct StepTimeBoundPass;

impl Pass for StepTimeBoundPass {
    fn code(&self) -> LintCode {
        LintCode::StepTimeBound
    }

    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>) {
        let Some(dag) = art.dag else {
            return;
        };
        let Some(calib) = art.calib else {
            return;
        };
        let cluster = art.cluster;
        let jitter_floor = (1.0 - calib.compute_jitter_frac).max(0.0);

        let n = dag.len();
        // Earliest-finish times under each pricing; `None` poisons the
        // bound (a task that can never finish).
        let mut wire_finish = vec![0.0_f64; n];
        let mut proto_finish = vec![0.0_f64; n];
        // Per-task protocol-path bookkeeping for the verdict breakdown.
        let mut proto_pred: Vec<Option<usize>> = vec![None; n];
        let mut is_transfer = vec![false; n];
        let mut poisoned = false;

        for id in dag.task_ids() {
            let i = id.index();
            let spec = dag.task(id);
            let (wire_price, proto_price, transfer) = match &spec.kind {
                TaskKind::Compute { duration, .. } => {
                    let d = duration.as_secs() * jitter_floor;
                    (d, d, false)
                }
                TaskKind::Delay { duration } => {
                    let d = duration.as_secs();
                    (d, d, false)
                }
                TaskKind::Marker => (0.0, 0.0, false),
                TaskKind::Transfer {
                    route,
                    bytes,
                    latency,
                    cap,
                } => {
                    let min_wire = route
                        .iter()
                        .map(|l| cluster.net().link_capacity(*l))
                        .fold(f64::INFINITY, f64::min);
                    let wire = latency.as_secs() + bytes / min_wire;
                    let proto = latency.as_secs() + bytes / min_wire.min(*cap);
                    if !proto.is_finite() {
                        if !poisoned {
                            sink.report(
                                LintCode::StepTimeBound,
                                Site::DagTask(i),
                                format!(
                                    "transfer of {:.2} GB crosses a zero-capacity link: \
                                     no finite step-time bound exists",
                                    bytes / 1e9
                                ),
                                "the flow can never finish; fix the route or the link rate"
                                    .to_string(),
                            );
                        }
                        poisoned = true;
                    }
                    (wire, proto, true)
                }
            };
            let mut wire_start = 0.0_f64;
            let mut proto_start = 0.0_f64;
            for p in dag.preds(id) {
                wire_start = wire_start.max(wire_finish[p.index()]);
                if proto_finish[p.index()] > proto_start {
                    proto_start = proto_finish[p.index()];
                    proto_pred[i] = Some(p.index());
                }
            }
            wire_finish[i] = wire_start + wire_price;
            proto_finish[i] = proto_start + proto_price;
            is_transfer[i] = transfer;
        }

        if poisoned || n == 0 {
            return;
        }

        let wire_sol_s = wire_finish.iter().fold(0.0_f64, |a, b| a.max(*b));
        let (end, protocol_s) =
            proto_finish
                .iter()
                .enumerate()
                .fold(
                    (0, 0.0_f64),
                    |acc, (i, t)| {
                        if *t > acc.1 {
                            (i, *t)
                        } else {
                            acc
                        }
                    },
                );

        // Back-walk the protocol critical path for the breakdown.
        let mut critical_tasks = 0;
        let mut transfer_s = 0.0;
        let mut compute_s = 0.0;
        let mut cursor = Some(end);
        while let Some(i) = cursor {
            critical_tasks += 1;
            let start = proto_pred[i].map_or(0.0, |p| proto_finish[p]);
            let price = proto_finish[i] - start;
            if is_transfer[i] {
                transfer_s += price;
            } else {
                compute_s += price;
            }
            cursor = proto_pred[i];
        }

        sink.set_step_bound(StepTimeBound {
            wire_sol_s,
            protocol_s,
            critical_tasks,
            transfer_s,
            compute_s,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use crate::pass::{AnalysisReport, PassManager};
    use zerosim_hw::{Cluster, ClusterSpec};
    use zerosim_simkit::{Dag, DagBuilder};
    use zerosim_strategies::{lower, Calibration, IterCtx, StrategyPlan, TrainOptions};

    fn analyze(cluster: &Cluster, dag: &Dag, calib: &Calibration) -> AnalysisReport {
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(StepTimeBoundPass));
        pm.run(
            &Artifacts::new(cluster)
                .with_dag(dag)
                .with_calibration(calib),
        )
    }

    #[test]
    fn bound_exists_and_orders_wire_below_protocol() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = zerosim_model::GptConfig::paper_model_with_params(1.4);
        let opts = TrainOptions::dual_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let strategy = zerosim_strategies::Strategy::Zero {
            stage: zerosim_strategies::ZeroStage::Three,
        };
        let plan = strategy.plan_iteration(&ctx).unwrap();
        let lowered = lower(&plan, &cluster, &calib).unwrap();
        let r = analyze(&cluster, lowered.dag(), &calib);
        assert!(r.is_clean());
        let b = r.bound.expect("ZL009 emitted a bound");
        assert!(b.protocol_s > 0.0);
        assert!(
            b.wire_sol_s <= b.protocol_s * (1.0 + 1e-9),
            "wire SoL {} must not exceed protocol bound {}",
            b.wire_sol_s,
            b.protocol_s
        );
        assert!(b.critical_tasks > 0);
        assert!(b.transfer_s >= 0.0 && b.compute_s > 0.0);
    }

    #[test]
    fn missing_calibration_skips_silently() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(StepTimeBoundPass));
        let dag = DagBuilder::new().build();
        let r = pm.run(&Artifacts::new(&cluster).with_dag(&dag));
        assert!(r.is_clean());
        assert!(r.bound.is_none());
    }

    #[test]
    fn synthetic_dag_prices_wire_and_protocol_exactly() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        // A real inter-tier route gives us genuine LinkIds to price.
        let route = cluster.route(
            zerosim_hw::MemLoc::Gpu(zerosim_hw::GpuId { node: 0, gpu: 0 }),
            zerosim_hw::MemLoc::Cpu(zerosim_hw::SocketId { node: 0, socket: 0 }),
        );
        let min_wire = route
            .links
            .iter()
            .map(|l| cluster.net().link_capacity(*l))
            .fold(f64::INFINITY, f64::min);
        let cap = min_wire / 4.0;
        let bytes = 8e9;
        let dur = zerosim_simkit::SimTime::from_secs(0.25);

        let mut b = DagBuilder::new();
        let c = b.compute(zerosim_simkit::ResourceId(0), dur, "k", &[]);
        b.transfer_capped(route.links.clone(), bytes, route.latency, cap, "x", 0, &[c]);
        let dag = b.build();

        let calib = Calibration::default();
        let r = analyze(&cluster, &dag, &calib);
        assert!(r.is_clean());
        let bd = r.bound.unwrap();
        let compute = 0.25 * (1.0 - calib.compute_jitter_frac);
        let lat = route.latency.as_secs();
        assert!((bd.wire_sol_s - (compute + lat + bytes / min_wire)).abs() < 1e-9);
        assert!((bd.protocol_s - (compute + lat + bytes / cap)).abs() < 1e-9);
        assert_eq!(bd.critical_tasks, 2);
        assert!((bd.compute_s - compute).abs() < 1e-9);
        assert!((bd.transfer_s - (lat + bytes / cap)).abs() < 1e-9);
    }
}
