//! Shared fixtures and runners for the experiment harness.

use zerosim_core::{max_model_size, CapacityResult, RunConfig, TrainingReport, TrainingSim};
use zerosim_hw::{ClusterSpec, NvmeDrivePlacement, NvmeId, VolumeId};
use zerosim_model::GptConfig;
use zerosim_strategies::{InfinityPlacement, Strategy, TrainOptions, ZeroStage};

/// A fresh simulator over the paper's two-node cluster.
pub fn sim() -> TrainingSim {
    TrainingSim::new(ClusterSpec::default()).expect("default spec valid")
}

/// Options for `nodes` nodes with the paper's batch size.
pub fn opts(nodes: usize) -> TrainOptions {
    if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    }
}

/// The five baseline configurations of Sec. IV, in figure order.
pub fn baselines(nodes: usize) -> Vec<(&'static str, Strategy)> {
    let tp = nodes * 4;
    vec![
        ("PyTorch DDP", Strategy::Ddp),
        ("Megatron-LM", Strategy::Megatron { tp, pp: 1 }),
        (
            "ZeRO-1",
            Strategy::Zero {
                stage: ZeroStage::One,
            },
        ),
        (
            "ZeRO-2",
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
        ),
        (
            "ZeRO-3",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
        ),
    ]
}

/// Capacity search for `strategy` on a fresh cluster.
pub fn capacity(strategy: &Strategy, nodes: usize) -> CapacityResult {
    let s = sim();
    max_model_size(s.cluster(), strategy, &opts(nodes), s.calibration())
        .expect("all paper strategies fit at least one layer")
}

/// Runs `strategy` at `model` and returns the report (quick
/// single-iteration measurement unless `thorough`).
pub fn run(strategy: &Strategy, model: &GptConfig, nodes: usize, thorough: bool) -> TrainingReport {
    let mut s = sim();
    let cfg = if thorough {
        RunConfig::default()
    } else {
        RunConfig::quick()
    };
    s.run(strategy, model, &opts(nodes), &cfg)
        .expect("configuration fits")
}

/// Runs `strategy` at its own capacity limit.
pub fn run_at_capacity(
    strategy: &Strategy,
    nodes: usize,
    thorough: bool,
) -> (CapacityResult, TrainingReport) {
    let cap = capacity(strategy, nodes);
    let model = GptConfig::paper_model(cap.num_layers);
    (cap, run(strategy, &model, nodes, thorough))
}

/// The NVMe data-placement configurations of Fig. 14 / Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeConfig {
    /// Single drive on socket 1.
    A,
    /// Two drives on socket 1, one RAID0 (the paper's default scratch).
    B,
    /// Two drives split across sockets, one RAID0 spanning both.
    C,
    /// Two drives split across sockets, no RAID (rank → local drive).
    D,
    /// Four drives (two per socket), one RAID0 spanning all.
    E,
    /// Four drives, two per-socket RAID0 volumes (rank → local volume).
    F,
    /// Four drives, no RAID (rank → local drive).
    G,
}

impl NvmeConfig {
    /// All seven configurations in paper order.
    pub const ALL: [NvmeConfig; 7] = [
        NvmeConfig::A,
        NvmeConfig::B,
        NvmeConfig::C,
        NvmeConfig::D,
        NvmeConfig::E,
        NvmeConfig::F,
        NvmeConfig::G,
    ];

    /// Configuration letter.
    pub fn letter(&self) -> char {
        match self {
            NvmeConfig::A => 'A',
            NvmeConfig::B => 'B',
            NvmeConfig::C => 'C',
            NvmeConfig::D => 'D',
            NvmeConfig::E => 'E',
            NvmeConfig::F => 'F',
            NvmeConfig::G => 'G',
        }
    }

    /// Scratch drive layout per node.
    pub fn layout(&self) -> Vec<NvmeDrivePlacement> {
        let s = |socket| NvmeDrivePlacement { socket };
        match self {
            NvmeConfig::A => vec![s(1)],
            NvmeConfig::B => vec![s(1), s(1)],
            NvmeConfig::C | NvmeConfig::D => vec![s(0), s(1)],
            NvmeConfig::E | NvmeConfig::F | NvmeConfig::G => vec![s(0), s(0), s(1), s(1)],
        }
    }

    /// Builds the simulator, volumes, and rank placement for this
    /// configuration (single-node training, ranks 0–3).
    pub fn build(&self) -> (TrainingSim, InfinityPlacement) {
        let spec = ClusterSpec::default().with_nvme_layout(self.layout());
        let mut s = TrainingSim::new(spec).expect("valid spec");
        let d = |drive| NvmeId { node: 0, drive };
        let cluster = s.cluster_mut();
        let vols: Vec<VolumeId> = match self {
            NvmeConfig::A => vec![cluster.create_volume(vec![d(0)])],
            NvmeConfig::B | NvmeConfig::C => {
                vec![cluster.create_volume(vec![d(0), d(1)])]
            }
            NvmeConfig::D => vec![
                cluster.create_volume(vec![d(0)]),
                cluster.create_volume(vec![d(1)]),
            ],
            NvmeConfig::E => vec![cluster.create_volume(vec![d(0), d(1), d(2), d(3)])],
            NvmeConfig::F => vec![
                cluster.create_volume(vec![d(0), d(1)]),
                cluster.create_volume(vec![d(2), d(3)]),
            ],
            NvmeConfig::G => (0..4).map(|i| cluster.create_volume(vec![d(i)])).collect(),
        };
        // Rank → volume mapping respecting node topology where the config
        // allows it (ranks 0,1 live on socket 0; 2,3 on socket 1).
        let rank_volumes = match self {
            NvmeConfig::A | NvmeConfig::B | NvmeConfig::C | NvmeConfig::E => {
                vec![vols[0]; 4]
            }
            NvmeConfig::D | NvmeConfig::F => vec![vols[0], vols[0], vols[1], vols[1]],
            NvmeConfig::G => vec![vols[0], vols[1], vols[2], vols[3]],
        };
        (s, InfinityPlacement::new(rank_volumes))
    }

    /// The ZeRO-Infinity strategy (optimizer offload) for this config.
    pub fn strategy(&self, placement: InfinityPlacement) -> Strategy {
        Strategy::ZeroInfinity {
            offload_params: false,
            placement,
        }
    }
}

/// The offload configurations compared in Sec. V (Figs. 11/12).
pub fn offload_strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        (
            "ZeRO-2 (CPU)",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
        ),
        (
            "ZeRO-3 (CPU)",
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: false,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_cover_five_configs() {
        assert_eq!(baselines(1).len(), 5);
        assert!(matches!(
            baselines(2)[1].1,
            Strategy::Megatron { tp: 8, pp: 1 }
        ));
    }

    #[test]
    fn nvme_configs_have_expected_drive_counts() {
        assert_eq!(NvmeConfig::A.layout().len(), 1);
        assert_eq!(NvmeConfig::B.layout().len(), 2);
        assert_eq!(NvmeConfig::E.layout().len(), 4);
        for c in NvmeConfig::ALL {
            let (_, placement) = c.build();
            assert_eq!(placement.rank_volumes.len(), 4);
        }
    }

    #[test]
    fn capacity_runner_works() {
        let cap = capacity(&Strategy::Ddp, 1);
        assert!(cap.billions() > 1.0 && cap.billions() < 2.5);
    }
}
