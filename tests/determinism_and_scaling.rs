//! Determinism guarantees, routing totality, and memory scaling laws.
//!
//! Triage note (hermetic-build PR): the ROADMAP's "seed tests failing"
//! was the workspace failing to *resolve registry dependencies* — the
//! suite below never compiled. With the in-house `zerosim-testkit`
//! substrate the workspace builds offline and every test in this file
//! passes unmodified against the paper's tables/figures; no expectation
//! needed correction.

use zerosim_core::{RunConfig, TrainingSim};
use zerosim_hw::{Cluster, ClusterSpec, GpuId, MemLoc, NvmeId, SocketId};
use zerosim_model::GptConfig;
use zerosim_strategies::{Calibration, InfinityPlacement, Strategy, TrainOptions, ZeroStage};

#[test]
fn identical_runs_are_bit_identical() {
    let run = || {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        sim.run(
            &Strategy::Zero {
                stage: ZeroStage::Two,
            },
            &GptConfig::paper_model_with_params(1.4),
            &TrainOptions::single_node(),
            &RunConfig::default(),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.iter_time, b.iter_time);
    assert_eq!(
        a.bandwidth.stats(0, zerosim_hw::LinkClass::NvLink).avg,
        b.bandwidth.stats(0, zerosim_hw::LinkClass::NvLink).avg
    );
    assert_eq!(a.spans.spans().len(), b.spans.spans().len());
}

#[test]
fn jitter_seed_changes_timing_slightly() {
    let makespan = |seed: u64| {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model_with_params(1.4);
        let opts = TrainOptions::single_node().with_jitter_seed(seed);
        let calib = Calibration::default();
        let dag = Strategy::Ddp
            .build_iteration(&cluster, &model, &opts, &calib)
            .unwrap();
        let mut net_cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut eng = zerosim_simkit::DagEngine::new(net_cluster.resource_slots());
        eng.run(
            net_cluster.net_mut(),
            &dag,
            zerosim_simkit::SimTime::ZERO,
            None,
        )
        .unwrap()
        .makespan()
        .as_secs()
    };
    let a = makespan(1);
    let b = makespan(2);
    assert_ne!(a, b, "different seeds must differ");
    assert!(
        (a - b).abs() / a < 0.05,
        "jitter should be a few percent: {a} vs {b}"
    );
    assert_eq!(makespan(1), a, "same seed must reproduce");
}

#[test]
fn routing_is_total_over_intra_node_endpoints() {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    // Every GPU pair on each node.
    for node in 0..2 {
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let r = cluster.route(
                    MemLoc::Gpu(GpuId { node, gpu: a }),
                    MemLoc::Gpu(GpuId { node, gpu: b }),
                );
                assert_eq!(r.hops(), 1, "intra-node GPU pairs ride NVLink");
            }
        }
        // Every GPU to every socket, both directions.
        for g in 0..4 {
            for s in 0..2 {
                let gpu = GpuId { node, gpu: g };
                let cpu = SocketId { node, socket: s };
                let down = cluster.route(MemLoc::Cpu(cpu), MemLoc::Gpu(gpu));
                let up = cluster.route(MemLoc::Gpu(gpu), MemLoc::Cpu(cpu));
                assert!(down.hops() >= 2 && up.hops() >= 2);
                let cross = cluster.gpu_socket(gpu).socket != s;
                // Cross-socket paths are strictly longer and slower to start.
                if cross {
                    assert!(down.hops() >= 4);
                    assert!(
                        !down.latency.is_zero(),
                        "cross-socket paths pay a non-zero startup latency"
                    );
                }
            }
        }
        // Every socket to every drive, both directions.
        for s in 0..2 {
            for d in 0..2 {
                let w = cluster.route(
                    MemLoc::Cpu(SocketId { node, socket: s }),
                    MemLoc::Nvme(NvmeId { node, drive: d }),
                );
                let r = cluster.route(
                    MemLoc::Nvme(NvmeId { node, drive: d }),
                    MemLoc::Cpu(SocketId { node, socket: s }),
                );
                assert!(w.hops() >= 3 && r.hops() >= 3);
            }
        }
    }
}

#[test]
fn internode_routes_cover_all_nic_choices() {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    for src_nic in 0..2 {
        for dst_nic in 0..2 {
            for g in 0..4 {
                let r = cluster.route_internode_gpu(
                    GpuId { node: 0, gpu: g },
                    GpuId { node: 1, gpu: g },
                    src_nic,
                    dst_nic,
                );
                let names: Vec<&str> = r
                    .links
                    .iter()
                    .map(|l| cluster.net().link_name(*l))
                    .collect();
                assert!(names.iter().any(|n| n.contains("roce.tx")));
                assert!(names.iter().any(|n| n.contains("roce.rx")));
                // Cross-socket NIC selection adds xGMI hops.
                let src_cross = cluster.gpu_socket(GpuId { node: 0, gpu: g }).socket != src_nic;
                let has_xgmi_src = names.iter().any(|n| n.contains("n0.xgmi"));
                assert_eq!(src_cross, has_xgmi_src, "gpu {g} nic {src_nic}: {names:?}");
            }
        }
    }
}

#[test]
fn per_gpu_memory_shrinks_with_cluster_size_for_zero_only() {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let model = GptConfig::paper_model_with_params(1.4);
    let calib = Calibration::default();
    let per_gpu = |strategy: &Strategy, nodes: usize| {
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        strategy
            .memory_plan(&cluster, &model, &opts, &calib)
            .unwrap()
            .per_gpu_bytes
    };
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let s = Strategy::Zero { stage };
        assert!(
            per_gpu(&s, 2) < per_gpu(&s, 1),
            "{stage:?} must shard further with more GPUs"
        );
    }
    let ddp = Strategy::Ddp;
    assert_eq!(per_gpu(&ddp, 1), per_gpu(&ddp, 2), "DDP replicates fully");
}

#[test]
fn zero3_cpu_param_offload_runs_end_to_end() {
    // The Table I corner not exercised by the paper's figures:
    // ZeRO-3 with optimizer AND parameters in host memory.
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let strategy = Strategy::ZeroOffload {
        stage: ZeroStage::Three,
        offload_params: true,
    };
    let report = sim
        .run(
            &strategy,
            &GptConfig::paper_model_with_params(1.4),
            &TrainOptions::single_node(),
            &RunConfig {
                allow_overflow: true,
                ..RunConfig::quick()
            },
        )
        .unwrap();
    // Param fetches put real traffic on PCIe and DRAM.
    let pcie = report
        .bandwidth
        .stats(0, zerosim_hw::LinkClass::PcieGpu)
        .avg;
    let dram = report.bandwidth.stats(0, zerosim_hw::LinkClass::Dram).avg;
    assert!(pcie > 1e9, "PCIe avg {pcie}");
    assert!(dram > 1e9, "DRAM avg {dram}");
    // And its GPU footprint undercuts keeping params resident.
    let resident = Strategy::ZeroOffload {
        stage: ZeroStage::Three,
        offload_params: false,
    };
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let calib = Calibration::default();
    let model = GptConfig::paper_model_with_params(1.4);
    let opts = TrainOptions::single_node();
    assert!(
        strategy
            .memory_plan(&cluster, &model, &opts, &calib)
            .unwrap()
            .per_gpu_bytes
            < resident
                .memory_plan(&cluster, &model, &opts, &calib)
                .unwrap()
                .per_gpu_bytes
    );
}

#[test]
fn infinity_rank_volume_mapping_wraps() {
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let d = |drive| NvmeId { node: 0, drive };
    let v0 = sim.cluster_mut().create_volume(vec![d(0)]);
    let v1 = sim.cluster_mut().create_volume(vec![d(1)]);
    let placement = InfinityPlacement::new(vec![v0, v1]);
    // Four ranks wrap over two volumes.
    assert_eq!(placement.volume_for(0), v0);
    assert_eq!(placement.volume_for(1), v1);
    assert_eq!(placement.volume_for(2), v0);
    assert_eq!(placement.volume_for(3), v1);
}
