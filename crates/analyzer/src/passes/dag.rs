//! ZL005 / ZL006 — dead-op and deadlock hygiene.
//!
//! ZL005 flags *dead* work: ops whose result nothing consumes. With a
//! plan in the artifacts, the analysis is semantic — every plan op with
//! no dependents must be a legitimate sink (a weight update, a
//! persisting write-back, or a step-phase parameter broadcast).
//! Anything else — a gradient collective nobody waits for, a compute op
//! feeding nothing, an unconsumed join — is flagged: its cost is
//! simulated, but the downstream work it should gate can start without
//! it, so the timeline silently loses a dependency. On a bare DAG
//! (no plan), the check degrades to structure: zero-cost join markers
//! that gate nothing. Warn-by-default, not an error.
//!
//! ZL006 detects dependency cycles and dangling edges. In-tree DAGs are
//! acyclic by construction, but lowered plans may arrive from
//! out-of-tree strategies or serialized artifacts via
//! [`crate::GraphView::from_edges`], so the analyzer owns the deadlock
//! check rather than trusting the builder.

use zerosim_hw::{IoDir, MemLoc};
use zerosim_simkit::TaskKind;
use zerosim_strategies::{IterPlan, PhaseStage, PlanOp};

use crate::diag::{LintCode, Site};
use crate::graph::GraphView;
use crate::pass::{Artifacts, Pass, Sink};

/// ZL005 (see module docs).
#[derive(Debug)]
pub struct DeadOpsPass;

/// Whether a dependent-less plan op is a legitimate sink of the
/// iteration (its effect is a state change, not a value someone reads).
fn is_legal_sink(op: &PlanOp, stage: PhaseStage) -> bool {
    match op {
        // The weight update itself.
        PlanOp::OptimizerStep { .. } => true,
        // Persisting state to a slower tier (checkpoint/offload
        // write-back): the write *is* the effect.
        PlanOp::VolumeIo {
            dir: IoDir::Write, ..
        } => true,
        PlanOp::TierTransfer { dst, .. } => {
            matches!(dst, MemLoc::Cpu(_) | MemLoc::Nvme(_))
        }
        // The post-step parameter broadcast (ZeRO-1/2): ranks end the
        // iteration holding fresh weights.
        PlanOp::Collective { .. } => stage == PhaseStage::Step,
        // Serving: a KV-cache append mutates cache state subsequent
        // decode steps read — the write *is* the effect. Token emission
        // (the GPU→CPU copy of sampled ids) is already covered by the
        // TierTransfer-to-CPU arm above.
        PlanOp::KvAppend { .. } => {
            matches!(stage, PhaseStage::Prefill | PhaseStage::Decode)
        }
        _ => false,
    }
}

fn dead_plan_ops(plan: &IterPlan, sink: &mut Sink<'_>) {
    let nodes = plan.nodes();
    let mut dependents = vec![0usize; nodes.len()];
    for n in nodes {
        for d in &n.deps {
            dependents[d.index()] += 1;
        }
    }
    for (i, n) in nodes.iter().enumerate() {
        if dependents[i] > 0 || is_legal_sink(&n.op, n.phase.stage) {
            continue;
        }
        // The final op is the plan's completion by convention.
        if i + 1 == nodes.len() {
            continue;
        }
        let what = match &n.op {
            PlanOp::Collective { .. } => "collective that no op waits for",
            PlanOp::Barrier => "join that gates nothing",
            PlanOp::LayerCompute { .. } | PlanOp::FixedCompute { .. } => {
                "compute whose result nothing consumes"
            }
            PlanOp::VolumeIo { .. } => "volume read that nothing consumes",
            _ => "op that nothing consumes",
        };
        sink.report(
            LintCode::DeadOps,
            Site::PlanOp(i),
            format!("dead op: {what}"),
            "wire the dependency (downstream work can currently start without \
             this op) or drop the op"
                .to_string(),
        );
    }
}

impl Pass for DeadOpsPass {
    fn code(&self) -> LintCode {
        LintCode::DeadOps
    }

    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>) {
        if let Some(plan) = art.plan {
            dead_plan_ops(plan, sink);
            return;
        }
        let Some(dag) = art.dag else {
            return;
        };
        let n = dag.len();
        for t in dag.task_ids() {
            let spec = dag.task(t);
            if !matches!(spec.kind, TaskKind::Marker) {
                continue;
            }
            // The final task is the plan's completion marker by
            // convention; everything else must gate something.
            if dag.succs(t).is_empty() && t.index() + 1 != n {
                sink.report(
                    LintCode::DeadOps,
                    Site::DagTask(t.index()),
                    format!(
                        "marker task over {} dependenc(ies) gates nothing",
                        dag.preds(t).len()
                    ),
                    "drop the join or make downstream work depend on it".to_string(),
                );
            }
        }
    }
}

/// ZL006 (see module docs).
#[derive(Debug)]
pub struct DagCyclePass;

impl Pass for DagCyclePass {
    fn code(&self) -> LintCode {
        LintCode::DagCycle
    }

    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>) {
        // An explicit untrusted graph takes precedence over the DAG.
        let owned;
        let graph: &GraphView = match (art.graph, art.dag) {
            (Some(g), _) => g,
            (None, Some(d)) => {
                owned = GraphView::from_dag(d);
                &owned
            }
            (None, None) => return,
        };
        if let Some((node, missing)) = graph.first_dangling() {
            sink.report(
                LintCode::DagCycle,
                Site::DagTask(node),
                format!("task depends on nonexistent task {missing}"),
                "the graph references a task that was never emitted".to_string(),
            );
        }
        if let Some(members) = graph.cycle_members() {
            let first = members[0];
            sink.report(
                LintCode::DagCycle,
                Site::DagTask(first),
                format!(
                    "dependency cycle: {} task(s) can never start (first: task {first})",
                    members.len()
                ),
                "break the cycle; the engine would deadlock at t=0".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{LintConfig, Severity};
    use crate::pass::{AnalysisReport, PassManager};
    use zerosim_hw::{Cluster, ClusterSpec};
    use zerosim_simkit::{Dag, DagBuilder, ResourceId, SimTime};

    fn run_dag(dag: &Dag) -> AnalysisReport {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(DeadOpsPass));
        pm.register(Box::new(DagCyclePass));
        pm.run(&Artifacts::new(&cluster).with_dag(dag))
    }

    fn run_graph(graph: &GraphView) -> AnalysisReport {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(DagCyclePass));
        pm.run(&Artifacts::new(&cluster).with_graph(graph))
    }

    #[test]
    fn live_dag_is_clean() {
        let mut b = DagBuilder::new();
        let c = b.compute(ResourceId(0), SimTime::from_secs(1e-3), "gemm", &[]);
        let m = b.marker(&[c]);
        let _tail = b.compute(ResourceId(0), SimTime::from_secs(1e-3), "gemm", &[m]);
        let dag = b.build();
        let r = run_dag(&dag);
        assert!(r.is_clean());
        assert_eq!(r.warning_count(), 0);
    }

    #[test]
    fn dead_marker_warns_final_marker_does_not() {
        let mut b = DagBuilder::new();
        let c = b.compute(ResourceId(0), SimTime::from_secs(1e-3), "gemm", &[]);
        let _dead = b.marker(&[c]);
        let _done = b.marker(&[c]); // final task: exempt by convention
        let dag = b.build();
        let r = run_dag(&dag);
        assert!(r.is_clean(), "ZL005 defaults to warn");
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        assert_eq!(r.diagnostics[0].site, Site::DagTask(1));
    }

    #[test]
    fn dead_collective_in_plan_warns_legal_sinks_do_not() {
        use zerosim_collectives::{CollectiveKind, CommGroup};
        use zerosim_hw::GpuId;
        use zerosim_strategies::{IterPlan, OptimizerDevice, PhaseStage, PlanOp};

        let cluster = Cluster::new(ClusterSpec::default().with_nodes(1)).unwrap();
        let g0 = GpuId { node: 0, gpu: 0 };
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        let b = plan.push(
            PlanOp::LayerCompute {
                gpu: g0,
                flops: 1e12,
                label: "gemm",
            },
            &[],
        );
        // Dead: a gradient reduction the optimizer never waits for.
        plan.push(
            PlanOp::Collective {
                kind: CollectiveKind::ReduceScatter,
                group: CommGroup::world(&cluster),
                bytes: 1e9,
                cap: 1.3e9,
            },
            &[b],
        );
        plan.set_phase(PhaseStage::Step, 0);
        let s = plan.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(g0),
                params: 1e9,
            },
            &[b],
        );
        // Legal sink: the post-step parameter broadcast.
        plan.push(
            PlanOp::Collective {
                kind: CollectiveKind::AllGather,
                group: CommGroup::world(&cluster),
                bytes: 1e9,
                cap: 1.3e9,
            },
            &[s],
        );

        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(DeadOpsPass));
        let r = pm.run(&Artifacts::new(&cluster).with_plan(&plan));
        assert!(r.is_clean(), "ZL005 defaults to warn");
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.diagnostics[0].site, Site::PlanOp(1));
        assert!(r.diagnostics[0].message.contains("no op waits for"));
    }

    #[test]
    fn cycle_and_dangling_fire_on_untrusted_graphs() {
        let g = GraphView::from_edges(4, &[(0, 1), (1, 2), (2, 1), (9, 3)]);
        let r = run_graph(&g);
        assert_eq!(r.deny_count(), 2);
        assert!(r.diagnostics[0].message.contains("nonexistent task 9"));
        assert!(r.diagnostics[1].message.contains("cycle"));
        assert_eq!(r.diagnostics[1].site, Site::DagTask(1));
    }
}
