//! GPT-2-like transformer configuration and parameter counting.
//!
//! The paper's workload (Sec. III-B2): 16 attention heads, hidden size
//! 2048, sequence length 256, 1024 maximum position embeddings, mixed
//! precision (FP16), per-GPU batch size 16, and a variable number of layers
//! used to scale the model until it no longer fits.

/// Configuration of a GPT-2-like decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GptConfig {
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Hidden (embedding) dimension.
    pub hidden_size: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Training sequence length.
    pub seq_len: usize,
    /// Maximum position embeddings.
    pub max_pos_embeddings: usize,
    /// Vocabulary size (GPT-2 BPE).
    pub vocab_size: usize,
}

impl GptConfig {
    /// The paper's base configuration with a chosen layer count.
    ///
    /// ```
    /// use zerosim_model::GptConfig;
    /// let m = GptConfig::paper_model(26);
    /// // The 26-layer model is the paper's "1.4 billion parameters" model.
    /// assert!((m.num_params() / 1e9 - 1.4).abs() < 0.05);
    /// ```
    pub fn paper_model(num_layers: usize) -> Self {
        GptConfig {
            num_layers,
            hidden_size: 2048,
            num_heads: 16,
            seq_len: 256,
            max_pos_embeddings: 1024,
            vocab_size: 50257,
        }
    }

    /// Parameters in one transformer layer: QKV + output projections
    /// (4 h² + 4 h), the two MLP matrices (8 h² + 5 h), and the two layer
    /// norms (4 h) — the standard 12 h² + 13 h.
    pub fn layer_params(&self) -> f64 {
        let h = self.hidden_size as f64;
        12.0 * h * h + 13.0 * h
    }

    /// Token + position embedding parameters (tied output head).
    pub fn embedding_params(&self) -> f64 {
        let h = self.hidden_size as f64;
        (self.vocab_size as f64 + self.max_pos_embeddings as f64) * h
    }

    /// Total parameter count (embeddings + layers + final layer norm).
    pub fn num_params(&self) -> f64 {
        self.embedding_params()
            + self.num_layers as f64 * self.layer_params()
            + 2.0 * self.hidden_size as f64
    }

    /// Smallest layer count whose parameter count reaches
    /// `target_billion × 1e9` with the paper's base shape.
    ///
    /// # Panics
    /// Panics if `target_billion` is not positive or is smaller than the
    /// embedding-only model.
    // Layer counts are small (tens to hundreds); rounded and >= 1.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn layers_for_params(target_billion: f64) -> usize {
        assert!(target_billion > 0.0, "target must be positive");
        let base = GptConfig::paper_model(0);
        let fixed = base.num_params();
        let target = target_billion * 1e9;
        assert!(
            target >= fixed,
            "target {target_billion}B is below the embedding-only size"
        );
        ((target - fixed) / base.layer_params()).round().max(1.0) as usize
    }

    /// Convenience: the paper model sized to approximately
    /// `target_billion` parameters.
    pub fn paper_model_with_params(target_billion: f64) -> Self {
        GptConfig::paper_model(Self::layers_for_params(target_billion))
    }

    /// A wide, fixed-depth model of approximately `target_billion`
    /// parameters: 64 layers, head dimension 128, hidden size rounded to
    /// the nearest multiple of 128.
    ///
    /// The paper scales its h=2048 shape by depth, which stops being
    /// representative at cluster scale — 72 B would need ~1380 layers,
    /// where real models of that size (Jean-Zay's 14 B/32 B/72 B
    /// comparison points) grow the hidden dimension at a fixed depth
    /// instead. Sequence length and vocabulary stay at the paper's
    /// workload values so memory/FLOP accounting remains comparable.
    ///
    /// # Panics
    /// Panics if `target_billion` is not positive.
    // Hidden sizes are a few thousand; rounded and clamped >= 128.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn wide_model_with_params(target_billion: f64) -> Self {
        assert!(target_billion > 0.0, "target must be positive");
        const LAYERS: usize = 64;
        const HEAD_DIM: usize = 128;
        // Invert params ~= 12 L h^2 for h, then snap to the head grid.
        let h_exact = (target_billion * 1e9 / (12.0 * LAYERS as f64)).sqrt();
        let hidden = ((h_exact / HEAD_DIM as f64).round().max(1.0) as usize) * HEAD_DIM;
        GptConfig {
            num_layers: LAYERS,
            hidden_size: hidden,
            num_heads: hidden / HEAD_DIM,
            seq_len: 256,
            max_pos_embeddings: 1024,
            vocab_size: 50257,
        }
    }

    /// Validates shape constraints.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_layers == 0 {
            return Err("model needs at least one layer".into());
        }
        if self.hidden_size == 0 || self.num_heads == 0 {
            return Err("hidden size and head count must be positive".into());
        }
        if !self.hidden_size.is_multiple_of(self.num_heads) {
            return Err(format!(
                "hidden size {} not divisible by {} heads",
                self.hidden_size, self.num_heads
            ));
        }
        if self.seq_len == 0 || self.seq_len > self.max_pos_embeddings {
            return Err(format!(
                "sequence length {} must be in 1..={}",
                self.seq_len, self.max_pos_embeddings
            ));
        }
        Ok(())
    }
}

impl Default for GptConfig {
    /// The paper's 1.4 B-parameter model (26 layers).
    fn default() -> Self {
        GptConfig::paper_model(26)
    }
}

// JSON codec (in-house serde replacement; see crates/testkit).
zerosim_testkit::impl_json! {
    struct GptConfig {
        num_layers, hidden_size, num_heads, seq_len, max_pos_embeddings, vocab_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_line_up() {
        // Fig. 6 / Table V model sizes should be reachable by layer sweeps.
        for (layers, billions, tol) in [
            (12, 0.71, 0.1),
            (26, 1.41, 0.1),
            (55, 2.9, 0.15),
            (85, 4.4, 0.2),
            (107, 5.5, 0.2),
            (129, 6.6, 0.2),
            (659, 33.3, 0.4),
        ] {
            let p = GptConfig::paper_model(layers).num_params() / 1e9;
            assert!(
                (p - billions).abs() < tol,
                "{layers} layers -> {p:.2}B, expected ~{billions}B"
            );
        }
    }

    #[test]
    fn layers_for_params_round_trips() {
        for b in [0.7, 1.4, 5.5, 11.4, 33.3] {
            let layers = GptConfig::layers_for_params(b);
            let p = GptConfig::paper_model(layers).num_params() / 1e9;
            assert!(
                (p - b).abs() < 0.06,
                "target {b}B got {p:.3}B ({layers} layers)"
            );
        }
    }

    #[test]
    fn wide_models_hit_jean_zay_sizes_at_fixed_depth() {
        for b in [14.0, 32.0, 72.0] {
            let m = GptConfig::wide_model_with_params(b);
            assert!(m.validate().is_ok(), "{b}B: {:?}", m.validate());
            assert_eq!(m.num_layers, 64);
            assert_eq!(m.hidden_size % 128, 0);
            assert_eq!(m.hidden_size / 128, m.num_heads);
            let p = m.num_params() / 1e9;
            // Snapping hidden to the 128 grid costs a few percent.
            assert!((p - b).abs() / b < 0.06, "target {b}B got {p:.2}B");
        }
        // The same 72 B as a paper-shaped model needs ~1380 layers.
        assert!(GptConfig::layers_for_params(72.0) > 1300);
    }

    #[test]
    fn layer_param_formula() {
        let c = GptConfig::paper_model(1);
        let h = 2048.0;
        assert_eq!(c.layer_params(), 12.0 * h * h + 13.0 * h);
        assert_eq!(c.embedding_params(), (50257.0 + 1024.0) * h);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation() {
        assert!(GptConfig::default().validate().is_ok());
        let mut c = GptConfig::default();
        c.num_heads = 15; // 2048 % 15 != 0
        assert!(c.validate().is_err());
        let mut c2 = GptConfig::default();
        c2.seq_len = 4096;
        assert!(c2.validate().is_err());
        let mut c3 = GptConfig::default();
        c3.num_layers = 0;
        assert!(c3.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "below the embedding-only size")]
    fn tiny_target_panics() {
        GptConfig::layers_for_params(0.01);
    }
}
