//! Infrastructure-cost accounting — quantifying the paper's conclusion
//! that NVMe/CPU offloading "significantly reduces infrastructure costs
//! and allows many researchers to have access to state-of-the-art models".
//!
//! Costs are list-price-class estimates for the paper's era of hardware;
//! what matters for the analysis is their ratio, not their absolute value.

use crate::report::TrainingReport;

/// Capital cost of the cluster pieces, USD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One A100-SXM4-40GB module.
    pub gpu_usd: f64,
    /// One XE8545-class chassis (2 CPUs, 1 TB DRAM, NICs), GPUs excluded.
    pub node_base_usd: f64,
    /// One D7-P5600-class 3.2 TB NVMe drive.
    pub nvme_usd: f64,
    /// Per-port share of the SN3700-class switch.
    pub switch_port_usd: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gpu_usd: 12_000.0,
            node_base_usd: 30_000.0,
            nvme_usd: 900.0,
            switch_port_usd: 1_500.0,
        }
    }
}

/// Cost-efficiency of one characterized configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Capital cost of everything the run occupies, USD.
    pub capital_usd: f64,
    /// Aggregate throughput, FLOP/s.
    pub throughput_flops: f64,
}

impl CostReport {
    /// Throughput bought per dollar (TFLOP/s per k$; higher is better).
    pub fn tflops_per_kusd(&self) -> f64 {
        self.throughput_flops / 1e12 / (self.capital_usd / 1000.0)
    }
}

impl CostModel {
    /// Prices the hardware a run occupies: its nodes (with their GPUs and
    /// scratch drives) and, for multi-node runs, the switch ports.
    pub fn estimate(
        &self,
        report: &TrainingReport,
        gpus_per_node: usize,
        nvme_per_node: usize,
    ) -> CostReport {
        let nodes = report.nodes as f64;
        let mut capital = nodes
            * (self.node_base_usd
                + gpus_per_node as f64 * self.gpu_usd
                + nvme_per_node as f64 * self.nvme_usd);
        if report.nodes > 1 {
            capital += nodes * 2.0 * self.switch_port_usd;
        }
        CostReport {
            capital_usd: capital,
            throughput_flops: report.throughput_flops(),
        }
    }
}

// JSON codec (in-house serde replacement; see crates/testkit).
zerosim_testkit::impl_json! {
    struct CostModel { gpu_usd, node_base_usd, nvme_usd, switch_port_usd }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RunConfig, TrainingSim};
    use zerosim_hw::ClusterSpec;
    use zerosim_model::GptConfig;
    use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

    fn report(strategy: Strategy, billions: f64, nodes: usize) -> TrainingReport {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        sim.run(
            &strategy,
            &GptConfig::paper_model_with_params(billions),
            &opts,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn consolidation_is_cheaper_per_tflops() {
        // The paper's Sec. V-A headline as economics: ZeRO-2 CPU offload on
        // ONE node beats Megatron on TWO nodes in throughput AND costs half
        // the hardware.
        let cost = CostModel::default();
        let megatron = cost.estimate(&report(Strategy::Megatron { tp: 8, pp: 1 }, 11.2, 2), 4, 2);
        let offload = cost.estimate(
            &report(
                Strategy::ZeroOffload {
                    stage: ZeroStage::Two,
                    offload_params: false,
                },
                11.2,
                1,
            ),
            4,
            2,
        );
        assert!(offload.capital_usd < 0.6 * megatron.capital_usd);
        assert!(offload.tflops_per_kusd() > 2.0 * megatron.tflops_per_kusd());
    }

    #[test]
    fn nvme_drives_are_cheap_capacity() {
        // Adding scratch drives barely moves the capital cost.
        let cost = CostModel::default();
        let r = report(Strategy::Ddp, 1.4, 1);
        let without = cost.estimate(&r, 4, 0).capital_usd;
        let with8 = cost.estimate(&r, 4, 8).capital_usd;
        assert!(with8 / without < 1.12);
    }
}
