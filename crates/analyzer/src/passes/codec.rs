//! ZL008 — codec legality on transfer ops.
//!
//! A declared [`Codec`] is a *claim* about what an op puts on the wire;
//! this pass checks the claim is internally consistent and that the plan
//! respects the encoded/decoded state of the bytes downstream:
//!
//! 1. **Declaration checks** — the codec sits on a transfer-class op
//!    (collective, tier transfer, volume I/O), its ratio matches the
//!    declared dtype pair, its block size is positive, and its input
//!    dtype is full-precision (re-encoding an already-quantized stream
//!    is double-quantization, statically visible in the dtypes).
//! 2. **Abstract taint walk** — each op is abstractly either *encoded*
//!    (a narrowing codec ran, no decode yet) or *decoded*. Compute that
//!    consumes full-precision bytes ([`PlanOp::LayerCompute`],
//!    [`PlanOp::OptimizerStep`]) must never see encoded input — that is
//!    a missing decode. A codec'd transfer fed encoded input is
//!    double-quantization on the dataflow.
//!
//! Collectives are a deliberate exception in the walk: they neither
//! receive nor forward incoming taint. Strategy planners chain
//! collectives with serialization edges (`comm_chain`) that model stream
//! ordering, not buffer dataflow — propagating taint across them would
//! flag e.g. consecutive qgZ reduces as double-quantization when each
//! operates on a distinct bucket. Double-quantization *through* a
//! collective is still caught statically by the dtype check in (1).

use zerosim_strategies::{Codec, PlanOp};

use crate::diag::{LintCode, Site};
use crate::pass::{Artifacts, Pass, Sink};

/// ZL008 (see module docs).
#[derive(Debug)]
pub struct CodecLegalityPass;

/// Relative tolerance on the declared ratio vs. the dtype-implied ratio.
const RATIO_TOLERANCE: f64 = 1e-9;

fn is_transfer_class(op: &PlanOp) -> bool {
    matches!(
        op,
        PlanOp::Collective { .. } | PlanOp::TierTransfer { .. } | PlanOp::VolumeIo { .. }
    )
}

fn declaration_diagnostics(i: usize, op: &PlanOp, codec: &Codec, sink: &mut Sink<'_>) -> bool {
    let mut ok = true;
    if !is_transfer_class(op) {
        sink.report(
            LintCode::CodecLegality,
            Site::PlanOp(i),
            "codec declared on a non-transfer op".to_string(),
            "codecs describe wire encodings; attach them to collectives, tier \
             transfers, or volume I/O"
                .to_string(),
        );
        ok = false;
    }
    let expected = codec.expected_ratio();
    if !codec.ratio.is_finite() || (codec.ratio - expected).abs() > expected * RATIO_TOLERANCE {
        sink.report(
            LintCode::CodecLegality,
            Site::PlanOp(i),
            format!(
                "codec ratio {} is inconsistent with {} -> {} (expected {})",
                codec.ratio,
                codec.dtype_in.label(),
                codec.dtype_out.label(),
                expected
            ),
            "declare the ratio implied by the dtype pair (Codec::quantize does)".to_string(),
        );
        ok = false;
    }
    if codec.block == 0 {
        sink.report(
            LintCode::CodecLegality,
            Site::PlanOp(i),
            "codec block size is zero".to_string(),
            "blockwise quantization needs at least one element per block".to_string(),
        );
        ok = false;
    }
    if codec.dtype_in.is_quantized() {
        sink.report(
            LintCode::CodecLegality,
            Site::PlanOp(i),
            format!(
                "codec input dtype {} is already quantized: double-quantization",
                codec.dtype_in.label()
            ),
            "decode to full precision before re-encoding, or fuse the codecs".to_string(),
        );
        ok = false;
    }
    ok
}

impl Pass for CodecLegalityPass {
    fn code(&self) -> LintCode {
        LintCode::CodecLegality
    }

    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>) {
        let Some(plan) = art.plan else {
            return;
        };
        let nodes = plan.nodes();

        for (id, codec) in plan.codecs() {
            declaration_diagnostics(id.index(), &nodes[id.index()].op, codec, sink);
        }

        // Abstract interpretation over emission order (deps only point
        // backwards, so this is a topological sweep). `tainted[i]` means
        // op `i`'s output is encoded bytes awaiting decode.
        let mut tainted = vec![false; nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            let incoming = n.deps.iter().any(|d| tainted[d.index()]);
            let narrows = plan.codec_at(i).is_some_and(Codec::is_narrowing);
            tainted[i] = match &n.op {
                // Collectives drop incoming taint: their inbound edges are
                // stream-serialization, not buffer dataflow (module docs).
                PlanOp::Collective { .. } => narrows,
                PlanOp::TierTransfer { .. } | PlanOp::VolumeIo { .. } => {
                    if narrows && incoming {
                        sink.report(
                            LintCode::CodecLegality,
                            Site::PlanOp(i),
                            "transfer re-encodes bytes that are already encoded: \
                             double-quantization"
                                .to_string(),
                            "insert a dequantize marker before this transfer".to_string(),
                        );
                    }
                    narrows || incoming
                }
                PlanOp::FixedCompute { label, .. } if label.starts_with("dequant") => false,
                PlanOp::LayerCompute { .. } | PlanOp::OptimizerStep { .. } => {
                    if incoming {
                        sink.report(
                            LintCode::CodecLegality,
                            Site::PlanOp(i),
                            "compute consumes encoded bytes without a decode: the codec's \
                             output dtype never reached full precision"
                                .to_string(),
                            "add a dequantize marker (FixedCompute labeled 'dequant*') \
                             between the encoded transfer and this op"
                                .to_string(),
                        );
                    }
                    false
                }
                // Joins and neutral spans forward the abstract state.
                _ => incoming,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use crate::pass::{AnalysisReport, PassManager};
    use zerosim_collectives::{CollectiveKind, CommGroup};
    use zerosim_hw::{Cluster, ClusterSpec, GpuId};
    use zerosim_strategies::{Dtype, IterPlan, PhaseStage};

    fn run(plan: &IterPlan) -> AnalysisReport {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(CodecLegalityPass));
        pm.run(&Artifacts::new(&cluster).with_plan(plan))
    }

    fn g(gpu: usize) -> GpuId {
        GpuId { node: 0, gpu }
    }

    fn gather(plan: &mut IterPlan, codec: Option<Codec>) -> zerosim_strategies::OpId {
        let id = plan.push(
            PlanOp::Collective {
                kind: CollectiveKind::AllGather,
                group: CommGroup::new(vec![g(0), g(1)]),
                bytes: 1e9,
                cap: f64::INFINITY,
            },
            &[],
        );
        if let Some(c) = codec {
            plan.set_codec(id, c);
        }
        id
    }

    #[test]
    fn quantize_then_dequant_then_compute_is_clean() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Forward, 0);
        let h = gather(
            &mut plan,
            Some(Codec::quantize(Dtype::Fp16, Dtype::Int8, 2048)),
        );
        let dq = plan.push(
            PlanOp::FixedCompute {
                gpu: g(0),
                secs: 1e-5,
                label: "dequant",
            },
            &[h],
        );
        plan.push(
            PlanOp::LayerCompute {
                gpu: g(0),
                flops: 1e12,
                label: "gemm",
            },
            &[dq],
        );
        assert!(run(&plan).is_clean());
    }

    #[test]
    fn compute_on_encoded_bytes_is_a_missing_decode() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Forward, 0);
        let h = gather(
            &mut plan,
            Some(Codec::quantize(Dtype::Fp16, Dtype::Int8, 2048)),
        );
        plan.push(
            PlanOp::LayerCompute {
                gpu: g(0),
                flops: 1e12,
                label: "gemm",
            },
            &[h],
        );
        let r = run(&plan);
        assert_eq!(r.deny_count(), 1);
        assert!(r.diagnostics[0].message.contains("without a decode"));
        assert_eq!(r.diagnostics[0].site, Site::PlanOp(1));
    }

    #[test]
    fn inconsistent_ratio_and_zero_block_fire() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Forward, 0);
        let mut bad = Codec::quantize(Dtype::Fp16, Dtype::Int8, 2048);
        bad.ratio = 0.25; // Fp16 -> Int8 implies 0.5
        bad.block = 0;
        gather(&mut plan, Some(bad));
        let r = run(&plan);
        assert_eq!(r.deny_count(), 2, "{}", r.render_text());
        assert!(r.diagnostics[0].message.contains("inconsistent"));
        assert!(r.diagnostics[1].message.contains("block size is zero"));
    }

    #[test]
    fn quantized_input_dtype_is_double_quantization() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Forward, 0);
        gather(
            &mut plan,
            Some(Codec::quantize(Dtype::Int8, Dtype::Int4, 512)),
        );
        let r = run(&plan);
        assert_eq!(r.deny_count(), 1);
        assert!(r.diagnostics[0].message.contains("double-quantization"));
    }

    #[test]
    fn chained_collectives_do_not_propagate_taint() {
        // comm_chain-style serialization: a second codec'd reduce depends
        // on the first, but operates on a distinct bucket. Must be clean.
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        let c = Codec::quantize(Dtype::Fp16, Dtype::Int4, 512);
        let h1 = plan.push(
            PlanOp::Collective {
                kind: CollectiveKind::ReduceScatter,
                group: CommGroup::new(vec![g(0), g(1)]),
                bytes: 1e9,
                cap: f64::INFINITY,
            },
            &[],
        );
        plan.set_codec(h1, c);
        let h2 = plan.push(
            PlanOp::Collective {
                kind: CollectiveKind::ReduceScatter,
                group: CommGroup::new(vec![g(0), g(1)]),
                bytes: 1e9,
                cap: f64::INFINITY,
            },
            &[h1],
        );
        plan.set_codec(h2, c);
        for h in [h1, h2] {
            let dq = plan.push(
                PlanOp::FixedCompute {
                    gpu: g(0),
                    secs: 1e-5,
                    label: "dequant_grad",
                },
                &[h],
            );
            plan.push(
                PlanOp::OptimizerStep {
                    device: zerosim_strategies::OptimizerDevice::Gpu(g(0)),
                    params: 1e9,
                },
                &[dq],
            );
        }
        let r = run(&plan);
        assert!(r.is_clean(), "{}", r.render_text());
    }
}
