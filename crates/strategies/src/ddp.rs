//! PyTorch Distributed Data-Parallel baseline.
//!
//! Every GPU holds a full replica (params + grads + optimizer states);
//! gradients are all-reduced in buckets overlapped with the backward pass;
//! the optimizer runs on-GPU over the full parameter set.

use zerosim_collectives::{CollectiveKind, CommGroup};
use zerosim_model::ModelStates;

use crate::builders::{IterCtx, PlanCtx};
use crate::error::StrategyError;
use crate::memory::MemoryPlan;
use crate::plan::{IterPlan, OpId, PhaseStage};

/// Builds the memory plan for DDP.
pub(crate) fn memory_plan(ctx: &IterCtx<'_>) -> Result<MemoryPlan, StrategyError> {
    let p = ctx.model.num_params();
    let states = ModelStates::for_params(p);
    let act = act_bytes(ctx);
    let per_gpu = states.total() + act + ctx.calib.gpu_fixed_bytes;
    let n = ctx.opts.num_gpus(ctx.cluster) as f64;
    Ok(MemoryPlan {
        per_gpu_bytes: per_gpu,
        total_gpu_bytes: per_gpu * n,
        per_node_cpu_bytes: ctx.calib.host_base_bytes,
        total_cpu_bytes: ctx.calib.host_base_bytes * ctx.opts.nodes as f64,
        nvme_bytes: 0.0,
        gpu_breakdown: vec![
            ("params_fp16".into(), states.params),
            ("grads_fp16".into(), states.grads),
            ("optimizer_fp32".into(), states.optimizer),
            ("activations".into(), act),
            ("fixed".into(), ctx.calib.gpu_fixed_bytes),
        ],
    })
}

fn act_bytes(ctx: &IterCtx<'_>) -> f64 {
    // Plain DDP scripts do not enable activation checkpointing.
    let m = ctx.model;
    ctx.calib.act_coeff_nockpt
        * m.num_layers as f64
        * m.seq_len as f64
        * ctx.opts.per_gpu_batch as f64
        * m.hidden_size as f64
        * 2.0
}

/// Describes one DDP training iteration as an [`IterPlan`].
// Micro-step indices are tiny (grad-accum counts): fit u32.
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn plan_iteration(ctx: &IterCtx<'_>) -> Result<IterPlan, StrategyError> {
    let gpus = ctx.opts.gpus(ctx.cluster);
    let group = CommGroup::new(gpus.clone());
    let tokens_gpu = (ctx.opts.per_gpu_batch * ctx.model.seq_len) as f64;
    let layers = ctx.model.num_layers;
    let bucket = ctx.comm_bucket_layers();

    let mut p = PlanCtx::new(*ctx);
    let prologue = p.prologue();
    let mut prev: Vec<OpId> = gpus.iter().map(|g| p.input_h2d(*g, &[prologue])).collect();

    let fwd_flops = ctx.layer_fwd_flops(tokens_gpu, 1);
    let vocab_flops = ctx.embedding_fwd_flops(tokens_gpu, 1);
    let mut comm_chain: Vec<OpId> = Vec::new();
    for micro in 0..ctx.opts.grad_accum {
        // Gradients accumulate locally; only the last micro-step syncs
        // (`torch.nn.parallel.DistributedDataParallel.no_sync`).
        let sync = micro + 1 == ctx.opts.grad_accum;

        // Forward.
        p.set_phase(PhaseStage::Forward, micro as u32);
        for _l in 0..layers {
            for (i, g) in gpus.iter().enumerate() {
                prev[i] = p.layer_compute(*g, fwd_flops, "gemm", &[prev[i]]);
            }
        }
        // Vocabulary projection + loss.
        for (i, g) in gpus.iter().enumerate() {
            prev[i] = p.layer_compute(*g, vocab_flops, "gemm", &[prev[i]]);
        }

        // Backward with bucketed, overlapped gradient all-reduce.
        p.set_phase(PhaseStage::Backward, micro as u32);
        let mut remaining = layers;
        while remaining > 0 {
            let chunk = bucket.min(remaining);
            remaining -= chunk;
            for _l in 0..chunk {
                for (i, g) in gpus.iter().enumerate() {
                    prev[i] = p.layer_compute(*g, 2.0 * fwd_flops, "gemm", &[prev[i]]);
                }
            }
            if !sync {
                continue;
            }
            let grad_bytes = 2.0 * ctx.model.layer_params() * chunk as f64;
            let mut deps: Vec<OpId> = prev.clone();
            deps.extend(comm_chain.last().copied());
            let h = p.collective(
                CollectiveKind::AllReduce,
                group.clone(),
                grad_bytes,
                ctx.calib.nccl_internode_cap,
                &deps,
            );
            comm_chain.push(h);
        }
    }
    // Embedding gradients.
    let mut deps: Vec<OpId> = prev.clone();
    deps.extend(comm_chain.last().copied());
    let h = p.collective(
        CollectiveKind::AllReduce,
        group,
        2.0 * ctx.model.embedding_params(),
        ctx.calib.nccl_internode_cap,
        &deps,
    );
    comm_chain.push(h);

    // Optimizer: full parameter set on every GPU.
    p.set_phase(
        PhaseStage::Step,
        ctx.opts.grad_accum.saturating_sub(1) as u32,
    );
    let params = ctx.model.num_params();
    let last_comm = *comm_chain.last().expect("at least one bucket");
    for (i, g) in gpus.iter().enumerate() {
        p.gpu_adam(*g, params, &[prev[i], last_comm]);
    }
    Ok(p.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;
    use crate::lower::lower;
    use crate::options::TrainOptions;
    use zerosim_hw::{Cluster, ClusterSpec};
    use zerosim_model::GptConfig;
    use zerosim_simkit::{DagEngine, SimTime};

    #[test]
    fn ddp_iteration_runs_and_is_compute_dominated() {
        let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let plan = plan_iteration(&ctx).unwrap();
        assert!(plan.validate(&cluster).is_ok());
        let mut lowered = lower(&plan, &cluster, &calib).unwrap();
        let dag = lowered.stamp(opts.jitter_seed);
        let mut eng = DagEngine::new(cluster.resource_slots());
        let out = eng
            .run(cluster.net_mut(), dag, SimTime::ZERO, None)
            .unwrap();
        let secs = out.makespan().as_secs();
        // The 1.4 B model iterates in hundreds of milliseconds.
        assert!(secs > 0.1 && secs < 1.5, "iteration took {secs}s");
    }

    #[test]
    fn memory_plan_is_16_bytes_per_param_plus_overheads() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let plan = memory_plan(&ctx).unwrap();
        let p = model.num_params();
        assert!(plan.per_gpu_bytes > 16.0 * p);
        assert!(plan.fits(&cluster), "1.4B DDP must fit");
        let big = GptConfig::paper_model(55); // 2.9 B
        let ctx_big = IterCtx {
            cluster: &cluster,
            model: &big,
            opts: &opts,
            calib: &calib,
        };
        assert!(
            !memory_plan(&ctx_big).unwrap().fits(&cluster),
            "2.9B DDP must not fit"
        );
    }
}
