//! Ablation ◆ (DESIGN.md §4.1): cost of the max-min fair progressive
//! filling solver as flow count grows.

use zerosim_simkit::{FlowNet, NullObserver};
use zerosim_testkit::bench::{Bench, BenchmarkId};

fn bench_solver(c: &mut Bench) {
    let mut group = c.benchmark_group("flow_solver");
    for flows in [4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("drain", flows), &flows, |b, &flows| {
            b.iter(|| {
                let mut net = FlowNet::new();
                let links: Vec<_> = (0..16)
                    .map(|i| net.add_link(format!("l{i}"), 1e9 + i as f64))
                    .collect();
                for f in 0..flows {
                    let route = [links[f % 16], links[(f * 7 + 3) % 16]];
                    net.start_flow(&route, 1e6 + f as f64).unwrap();
                }
                net.drain(&mut NullObserver)
            });
        });
    }
    group.finish();
}

zerosim_testkit::bench_main!(bench_solver);
