//! Parallel sweeps are deterministic: fanning the 12 golden paper
//! configurations (the strategy × node matrix of `plan_equivalence.rs`
//! plus ZeRO-Infinity) across 1, 2, and 8 workers yields the same
//! ordered label and digest vectors — scheduling must never leak into
//! results.

use zerosim_core::{RunConfig, SweepRunner, SweepSpec};
use zerosim_hw::{NvmeId, VolumeId};
use zerosim_model::GptConfig;
use zerosim_strategies::{InfinityPlacement, Strategy, TrainOptions, ZeroStage};

fn opts_for(nodes: usize) -> TrainOptions {
    if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    }
}

/// The golden strategy × node-count matrix of `tests/plan_equivalence.rs`
/// plus the ZeRO-Infinity configuration: 12 sweep specs in fixed order.
fn golden_specs() -> Vec<SweepSpec> {
    let model = GptConfig::paper_model_with_params(1.4);
    let run = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    let matrix: Vec<(Strategy, usize)> = vec![
        (Strategy::Ddp, 1),
        (Strategy::Ddp, 2),
        (Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (Strategy::Megatron { tp: 8, pp: 1 }, 2),
        (Strategy::Megatron { tp: 4, pp: 2 }, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::One,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: true,
            },
            1,
        ),
    ];
    let mut specs: Vec<SweepSpec> = matrix
        .into_iter()
        .enumerate()
        .map(|(i, (strategy, nodes))| {
            SweepSpec::new(
                format!("golden-{i:02} {} {nodes}n", strategy.name()),
                strategy,
                model,
                opts_for(nodes),
            )
            .with_run(run)
        })
        .collect();
    // Config 12: ZeRO-Infinity over a two-drive RAID0 scratch volume.
    let d = |drive| NvmeId { node: 0, drive };
    specs.push(
        SweepSpec::new(
            "golden-11 ZeRO-Infinity 1n",
            Strategy::ZeroInfinity {
                offload_params: true,
                placement: InfinityPlacement::new(vec![VolumeId(0)]),
            },
            model,
            opts_for(1),
        )
        .with_volume(vec![d(0), d(1)])
        .with_run(run),
    );
    specs
}

#[test]
fn golden_sweep_is_width_invariant() {
    let specs = golden_specs();
    assert_eq!(specs.len(), 12, "golden matrix must stay at 12 configs");

    // Serial execution is the reference ordering.
    let reference = SweepRunner::new(1)
        .run_parallel(specs.clone())
        .expect("golden configs run");
    assert_eq!(reference.len(), 12);

    for workers in [2usize, 8] {
        let runs = SweepRunner::new(workers)
            .run_parallel(specs.clone())
            .expect("golden configs run");
        let labels: Vec<&str> = runs.iter().map(|r| r.label.as_str()).collect();
        let expect_labels: Vec<&str> = reference.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, expect_labels, "ordering broke at {workers} workers");
        for (run, want) in runs.iter().zip(&reference) {
            assert_eq!(
                run.digest, want.digest,
                "digest drifted at {workers} workers for {}",
                run.label
            );
            // The digest excludes solver accounting; check the work
            // counters separately — they must match too, because each
            // run's event sequence is spec-determined.
            assert_eq!(
                run.report.solver, want.report.solver,
                "solver accounting drifted at {workers} workers for {}",
                run.label
            );
        }
    }
}

#[test]
fn sweep_digests_distinguish_the_golden_configs() {
    let runs = SweepRunner::new(8)
        .run_parallel(golden_specs())
        .expect("golden configs run");
    let mut digests: Vec<u64> = runs.iter().map(|r| r.digest).collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), runs.len(), "golden digests must be distinct");
}
