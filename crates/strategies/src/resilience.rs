//! Checkpoint/restart planning and the recovery policy.
//!
//! Resilient training periodically snapshots the model states that cannot
//! be recomputed — the FP16 parameters and the FP32 optimizer state
//! (14 bytes/parameter; gradients are transient and re-derived) — to a
//! durable tier, and on node loss restarts from the last snapshot,
//! replaying the iterations committed since. This module provides:
//!
//! * [`RecoveryPolicy`] — how often to checkpoint and how restart is
//!   charged (relaunch delay, attempt budget);
//! * [`CheckpointSink`] — where snapshots land (host DRAM or striped
//!   NVMe volumes via an [`InfinityPlacement`]);
//! * [`plan_checkpoint`] / [`plan_restore`] — [`WorkloadKind::Checkpoint`]
//!   plans emitting the per-rank snapshot traffic, lowered once and run
//!   by the core engine between iterations.
//!
//! Snapshots are sharded: each data-parallel rank writes `14 P / world`
//! bytes (a ZeRO-style partitioned checkpoint), so checkpoint cost scales
//! down with the cluster exactly as DeepSpeed's `save_checkpoint` does.

use zerosim_hw::{IoDir, MemLoc};

use crate::builders::{IterCtx, PlanCtx};
use crate::plan::{IterPlan, WorkloadKind};
use crate::zero::InfinityPlacement;

/// How a resilient run checkpoints and recovers from node loss.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Take a checkpoint every `checkpoint_interval` committed
    /// iterations; `0` disables checkpointing (a fault then replays the
    /// whole run so far).
    pub checkpoint_interval: usize,
    /// Wall-clock seconds charged per restart before the restore traffic
    /// begins (job relaunch, process group re-formation, NCCL re-init).
    pub restart_delay_s: f64,
    /// Maximum number of recoveries before the run is declared failed.
    pub max_recoveries: usize,
}

impl RecoveryPolicy {
    /// No checkpointing and no recovery budget: a node loss ends the run.
    pub fn none() -> Self {
        RecoveryPolicy {
            checkpoint_interval: 0,
            restart_delay_s: 0.0,
            max_recoveries: 0,
        }
    }

    /// Checkpoint every `interval` committed iterations with a default
    /// 10 s relaunch delay and a budget of 8 recoveries.
    pub fn every(interval: usize) -> Self {
        RecoveryPolicy {
            checkpoint_interval: interval,
            restart_delay_s: 10.0,
            max_recoveries: 8,
        }
    }

    /// Overrides the relaunch delay.
    pub fn with_restart_delay(mut self, secs: f64) -> Self {
        self.restart_delay_s = secs;
        self
    }

    /// Overrides the recovery budget.
    pub fn with_max_recoveries(mut self, n: usize) -> Self {
        self.max_recoveries = n;
        self
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::none()
    }
}

/// Where checkpoint snapshots are written.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointSink {
    /// Snapshots stay in host DRAM on each rank's socket (fast, lost
    /// with the node — models in-memory checkpointing).
    Dram,
    /// Snapshots are striped onto NVMe volumes, one volume per rank via
    /// the same round-robin placement ZeRO-Infinity uses for offload.
    Nvme(InfinityPlacement),
}

/// Bytes of durable state each rank snapshots: FP16 parameters plus FP32
/// optimizer state (14 bytes/parameter), sharded across the world size.
/// Gradients are transient and excluded.
pub fn snapshot_bytes_per_rank(ctx: &IterCtx<'_>) -> f64 {
    let states = ctx.model.model_states();
    let world = ctx.opts.num_gpus(ctx.cluster).max(1) as f64;
    (states.params + states.optimizer) / world
}

/// Bytes a full checkpoint moves cluster-wide: every rank's shard summed
/// back up. Independent of world size (the shards partition the durable
/// state); the fleet layer uses it to sanity-scale measured checkpoint
/// cost against sink bandwidth.
pub fn snapshot_bytes_total(ctx: &IterCtx<'_>) -> f64 {
    let world = ctx.opts.num_gpus(ctx.cluster).max(1) as f64;
    snapshot_bytes_per_rank(ctx) * world
}

/// Builds the checkpoint-snapshot plan: every rank drains its state shard
/// GPU→DRAM (and onward to NVMe for [`CheckpointSink::Nvme`]), joined by
/// a final barrier so the snapshot commits atomically.
pub fn plan_checkpoint(ctx: &IterCtx<'_>, sink: &CheckpointSink) -> IterPlan {
    plan_state_movement(ctx, sink, Direction::Save)
}

/// Builds the restore plan: the mirror of [`plan_checkpoint`] (NVMe→DRAM
/// →GPU reads), run once after a restart before training resumes.
pub fn plan_restore(ctx: &IterCtx<'_>, sink: &CheckpointSink) -> IterPlan {
    plan_state_movement(ctx, sink, Direction::Restore)
}

#[derive(Clone, Copy)]
enum Direction {
    Save,
    Restore,
}

fn plan_state_movement(ctx: &IterCtx<'_>, sink: &CheckpointSink, dir: Direction) -> IterPlan {
    let bytes = snapshot_bytes_per_rank(ctx);
    let mut p = PlanCtx::new_checkpoint(*ctx);
    let mut joins = Vec::new();
    for (rank, gpu) in ctx.opts.gpus(ctx.cluster).into_iter().enumerate() {
        let socket = ctx.cluster.gpu_socket(gpu);
        let track = ctx.gpu_track(gpu);
        let tail = match (dir, sink) {
            (Direction::Save, CheckpointSink::Dram) => p.transfer(
                MemLoc::Gpu(gpu),
                MemLoc::Cpu(socket),
                bytes,
                "ckpt_d2h",
                track,
                &[],
            ),
            (Direction::Save, CheckpointSink::Nvme(placement)) => {
                let d2h = p.transfer(
                    MemLoc::Gpu(gpu),
                    MemLoc::Cpu(socket),
                    bytes,
                    "ckpt_d2h",
                    track,
                    &[],
                );
                p.volume_io(
                    placement.volume_for(rank),
                    socket,
                    IoDir::Write,
                    bytes,
                    "ckpt_write",
                    track,
                    &[d2h],
                )
            }
            (Direction::Restore, CheckpointSink::Dram) => p.transfer(
                MemLoc::Cpu(socket),
                MemLoc::Gpu(gpu),
                bytes,
                "ckpt_h2d",
                track,
                &[],
            ),
            (Direction::Restore, CheckpointSink::Nvme(placement)) => {
                let read = p.volume_io(
                    placement.volume_for(rank),
                    socket,
                    IoDir::Read,
                    bytes,
                    "ckpt_read",
                    track,
                    &[],
                );
                p.transfer(
                    MemLoc::Cpu(socket),
                    MemLoc::Gpu(gpu),
                    bytes,
                    "ckpt_h2d",
                    track,
                    &[read],
                )
            }
        };
        joins.push(tail);
    }
    p.barrier(&joins);
    let plan = p.finish();
    debug_assert_eq!(plan.kind(), WorkloadKind::Checkpoint);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;
    use crate::lower::lower;
    use crate::options::TrainOptions;
    use zerosim_hw::{Cluster, ClusterSpec, NvmeId};
    use zerosim_model::GptConfig;

    fn fixtures() -> (Cluster, GptConfig, TrainOptions, Calibration) {
        (
            Cluster::new(ClusterSpec::default()).unwrap(),
            GptConfig::default(),
            TrainOptions::single_node(),
            Calibration::default(),
        )
    }

    #[test]
    fn snapshot_is_14_bytes_per_param_sharded() {
        let (c, m, o, k) = fixtures();
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let world = o.num_gpus(&c) as f64;
        let expect = 14.0 * m.num_params() / world;
        assert!((snapshot_bytes_per_rank(&ctx) - expect).abs() < 1.0);
        // The cluster-wide total is world-size invariant.
        assert!((snapshot_bytes_total(&ctx) - 14.0 * m.num_params()).abs() < world);
    }

    #[test]
    fn dram_checkpoint_validates_and_lowers() {
        let (c, m, o, k) = fixtures();
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let plan = plan_checkpoint(&ctx, &CheckpointSink::Dram);
        assert_eq!(plan.kind(), WorkloadKind::Checkpoint);
        // One d2h per rank plus the commit barrier.
        assert_eq!(plan.len(), o.num_gpus(&c) + 1);
        plan.validate(&c).unwrap();
        let lowered = lower(&plan, &c, &k).unwrap();
        // Pure state movement: nothing to re-stamp per iteration.
        assert_eq!(lowered.stamped_tasks(), 0);
    }

    #[test]
    fn nvme_checkpoint_round_trips() {
        let (mut c, m, o, k) = fixtures();
        let vol = c.create_volume(vec![
            NvmeId { node: 0, drive: 0 },
            NvmeId { node: 0, drive: 1 },
        ]);
        let sink = CheckpointSink::Nvme(InfinityPlacement::new(vec![vol]));
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let save = plan_checkpoint(&ctx, &sink);
        let restore = plan_restore(&ctx, &sink);
        save.validate(&c).unwrap();
        restore.validate(&c).unwrap();
        // d2h + nvme write per rank, plus the barrier.
        assert_eq!(save.len(), 2 * o.num_gpus(&c) + 1);
        assert_eq!(save.staging_bytes(), restore.staging_bytes());
        lower(&save, &c, &k).unwrap();
        lower(&restore, &c, &k).unwrap();
    }

    #[test]
    fn policy_builders() {
        let p = RecoveryPolicy::every(5)
            .with_restart_delay(2.5)
            .with_max_recoveries(3);
        assert_eq!(p.checkpoint_interval, 5);
        assert_eq!(p.restart_delay_s, 2.5);
        assert_eq!(p.max_recoveries, 3);
        assert_eq!(RecoveryPolicy::none().checkpoint_interval, 0);
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::none());
    }
}
