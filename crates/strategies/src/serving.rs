//! Serving strategies: prefill/decode plan emitters over the unified
//! workload IR.
//!
//! A serving deployment tensor-parallelizes the model over the world's
//! GPUs (TP spanning nodes when the deployment does — the same
//! configuration whose per-layer blocking all-reduces collapse dual-node
//! training throughput in the paper's Fig. 7-b; serving inherits the
//! identical wire-vs-protocol question at much smaller message sizes).
//! Two weight-residency policies are modelled:
//!
//! * [`ServingStrategy::Dense`] — FP16 weights resident in HBM, sharded
//!   by TP. The fast path when the model fits.
//! * [`ServingStrategy::NvmeStreamed`] — ZeRO-Inference-style weight
//!   streaming: each rank's shard lives on an NVMe scratch volume and is
//!   read bucket-by-bucket through host DRAM into HBM for every forward
//!   pass (prefill *and* each decode step). Trades TTFT/TPOT for serving
//!   models far past HBM, bottlenecked by the same per-drive bandwidth
//!   the paper characterizes in Sec. V-B.
//!
//! Emitted plans are [`WorkloadKind::Prefill`] / [`WorkloadKind::Decode`]
//! and flow through the identical `lower` → `stamp` → engine pipeline as
//! training iterations; KV-cache residency rides as [`PlanOp::KvAppend`]
//! ops that planlint ZL001 accounts cumulatively.

use zerosim_collectives::{CollectiveKind, CommGroup};
use zerosim_hw::{IoDir, MemLoc};
use zerosim_model::GptConfig;

use crate::builders::{IterCtx, PlanCtx};
use crate::error::StrategyError;
use crate::memory::MemoryPlan;
use crate::plan::{OpId, PhaseStage, WorkloadKind, WorkloadPlan};
use crate::zero::InfinityPlacement;

/// FP16 bytes per model parameter.
const WEIGHT_BYTES_PER_PARAM: f64 = 2.0;

/// KV-cache bytes one token adds across the whole model: FP16 key and
/// value vectors per layer (`2 · 2 · hidden · layers`).
pub fn kv_bytes_per_token(model: &GptConfig) -> f64 {
    4.0 * model.hidden_size as f64 * model.num_layers as f64
}

/// Weight-residency policy of a serving deployment. Tensor parallelism
/// spans every GPU the options grant (all GPUs of `opts.nodes` nodes).
#[derive(Debug, Clone, PartialEq)]
pub enum ServingStrategy {
    /// FP16 weights resident in HBM, TP-sharded.
    Dense,
    /// ZeRO-Inference-style NVMe weight streaming: rank shards live on
    /// scratch volumes and stream through DRAM per forward pass.
    NvmeStreamed {
        /// Volume each rank streams its shard through.
        placement: InfinityPlacement,
    },
}

impl ServingStrategy {
    /// Human-readable name for reports.
    pub fn display_name(&self) -> &'static str {
        match self {
            ServingStrategy::Dense => "Dense (TP)",
            ServingStrategy::NvmeStreamed { .. } => "ZeRO-Inference (NVMe stream)",
        }
    }

    /// The serving memory plan: weight residency per tier plus the fixed
    /// runtime footprint. KV-cache growth is *not* in here — it is
    /// plan-carried ([`crate::plan::PlanOp::KvAppend`]) because it grows
    /// per decode step; planlint adds it on top of this resident base.
    pub fn plan_memory(&self, ctx: &IterCtx<'_>) -> MemoryPlan {
        let tp = ctx.opts.num_gpus(ctx.cluster) as f64;
        let weights = ctx.model.num_params() * WEIGHT_BYTES_PER_PARAM;
        let (gpu_weights, nvme_bytes, cpu_stage) = match self {
            ServingStrategy::Dense => (weights / tp, 0.0, 0.0),
            // Streaming keeps one bucket of the shard live in HBM and a
            // double buffer staged in DRAM per node.
            ServingStrategy::NvmeStreamed { .. } => {
                let bucket_frac = bucket_layers(ctx.model) as f64 / ctx.model.num_layers as f64;
                let live = (weights / tp) * bucket_frac * 2.0; // double buffer
                (live, weights, (weights / tp) * bucket_frac * 4.0)
            }
        };
        let per_gpu = gpu_weights + ctx.calib.gpu_fixed_bytes;
        MemoryPlan {
            per_gpu_bytes: per_gpu,
            total_gpu_bytes: per_gpu * tp,
            per_node_cpu_bytes: ctx.calib.host_base_bytes + cpu_stage,
            total_cpu_bytes: (ctx.calib.host_base_bytes + cpu_stage) * ctx.opts.nodes as f64,
            nvme_bytes,
            gpu_breakdown: vec![
                ("weights".into(), gpu_weights),
                ("fixed".into(), ctx.calib.gpu_fixed_bytes),
            ],
        }
    }

    /// Describes prompt processing for one admitted batch:
    /// `prompt_tokens` total tokens across `requests` requests, ending
    /// with each request's first generated token emitted to the host.
    ///
    /// # Errors
    /// [`StrategyError::InvalidLayout`] when the context grants no GPUs.
    pub fn plan_prefill(
        &self,
        ctx: &IterCtx<'_>,
        prompt_tokens: usize,
        requests: usize,
    ) -> Result<WorkloadPlan, StrategyError> {
        // Causal attention over a prompt sees on average half the prompt
        // as context.
        self.plan_forward(
            ctx,
            WorkloadKind::Prefill,
            0,
            prompt_tokens,
            prompt_tokens.div_ceil(2),
            requests,
        )
    }

    /// Describes decode step `step` for a running batch of `batch`
    /// sequences whose KV caches hold `kv_len` tokens each: one token per
    /// sequence through the model, attention over the resident cache, one
    /// KV append, one emitted token per sequence.
    ///
    /// Plans depend on `kv_len` only through the attention-context value
    /// passed here, so callers bucket `kv_len` (see
    /// [`crate::serving::kv_bucket`]) and reuse one lowered plan per
    /// (batch, bucket) pair across steps and requests.
    ///
    /// # Errors
    /// [`StrategyError::InvalidLayout`] when the context grants no GPUs.
    pub fn plan_decode(
        &self,
        ctx: &IterCtx<'_>,
        step: u32,
        batch: usize,
        kv_len: usize,
    ) -> Result<WorkloadPlan, StrategyError> {
        self.plan_forward(ctx, WorkloadKind::Decode, step, batch, kv_len, batch)
    }

    /// Shared forward-pass emitter: `tokens` tokens through the model
    /// with `attn_ctx` tokens of attention context each, emitting
    /// `emitting` sampled tokens to the host at the end.
    #[allow(clippy::too_many_arguments)]
    fn plan_forward(
        &self,
        ctx: &IterCtx<'_>,
        kind: WorkloadKind,
        micro: u32,
        tokens: usize,
        attn_ctx: usize,
        emitting: usize,
    ) -> Result<WorkloadPlan, StrategyError> {
        let gpus = ctx.opts.gpus(ctx.cluster);
        let tp = gpus.len();
        if tp == 0 {
            return Err(StrategyError::layout("serving world has no GPUs"));
        }
        let stage = match kind {
            WorkloadKind::Prefill => PhaseStage::Prefill,
            _ => PhaseStage::Decode,
        };
        let m = ctx.model;
        let h = m.hidden_size as f64;
        let toks = tokens as f64;

        // Per-layer FLOPs at `attn_ctx` context, split across TP ranks.
        let dense = 2.0 * m.layer_params() * toks;
        let attention = 4.0 * attn_ctx as f64 * h * toks;
        let layer_flops = (dense + attention) / tp as f64;
        // Two fused TP all-reduces per layer over the activation tensor.
        let ar_bytes_per_layer = 2.0 * toks * h * 2.0;
        let bucket = bucket_layers(m);
        let n_buckets = m.num_layers.div_ceil(bucket);
        let shard_bytes = m.num_params() * WEIGHT_BYTES_PER_PARAM / tp as f64;
        let bucket_weight_bytes = shard_bytes / n_buckets as f64;

        let mut p = match kind {
            WorkloadKind::Prefill => PlanCtx::new_prefill(*ctx),
            _ => PlanCtx::new_decode(*ctx),
        };
        // Per-step frontend overhead (scheduler, sampling, launch) on
        // every rank — the fixed cost that makes small-batch decode
        // protocol-bound. Much smaller than the training prologue.
        let launch: Vec<OpId> = gpus
            .iter()
            .map(|&g| p.fixed_compute(g, ctx.calib.serve_step_overhead_s, "serve_step", &[]))
            .collect();

        // Token ids (4 B each) host-to-device on every TP rank.
        let mut chain: Vec<OpId> = gpus
            .iter()
            .zip(&launch)
            .map(|(&g, &l)| {
                let socket = ctx.cluster.gpu_socket(g);
                p.transfer(
                    MemLoc::Cpu(socket),
                    MemLoc::Gpu(g),
                    (tokens * 4) as f64,
                    "token_h2d",
                    ctx.gpu_track(g),
                    &[l],
                )
            })
            .collect();

        p.set_phase(stage, micro);
        let group = CommGroup::new(gpus.clone());
        // Per rank: the previous bucket's weight read (serializes each
        // rank's drive queue under streaming).
        let mut prev_read: Vec<Option<OpId>> = vec![None; tp];
        for b in 0..n_buckets {
            let layers_here = bucket.min(m.num_layers - b * bucket);
            // Streamed weights arrive before the bucket's compute.
            if let ServingStrategy::NvmeStreamed { placement } = self {
                for (r, &g) in gpus.iter().enumerate() {
                    let socket = ctx.cluster.gpu_socket(g);
                    let track = ctx.gpu_track(g);
                    let read_deps: Vec<OpId> = match prev_read[r] {
                        Some(prev) => vec![launch[r], prev],
                        None => vec![launch[r]],
                    };
                    let read = p.volume_io(
                        placement.volume_for(r),
                        socket,
                        IoDir::Read,
                        bucket_weight_bytes,
                        "weight_read",
                        track,
                        &read_deps,
                    );
                    prev_read[r] = Some(read);
                    let h2d = p.transfer(
                        MemLoc::Cpu(socket),
                        MemLoc::Gpu(g),
                        bucket_weight_bytes,
                        "weight_h2d",
                        track,
                        &[read],
                    );
                    chain[r] = p.barrier(&[chain[r], h2d]);
                }
            }
            for (r, &g) in gpus.iter().enumerate() {
                chain[r] =
                    p.layer_compute(g, layer_flops * layers_here as f64, "gemm", &[chain[r]]);
            }
            if tp > 1 {
                let deps: Vec<OpId> = chain.clone();
                let ar = p.collective(
                    CollectiveKind::AllReduce,
                    group.clone(),
                    ar_bytes_per_layer * layers_here as f64,
                    ctx.calib.megatron_internode_cap,
                    &deps,
                );
                chain.iter_mut().for_each(|c| *c = ar);
            }
        }
        // Vocabulary projection + sampling on every rank's shard.
        let vocab_flops = ctx.embedding_fwd_flops(toks, tp);
        for (r, &g) in gpus.iter().enumerate() {
            chain[r] = p.layer_compute(g, vocab_flops, "gemm", &[chain[r]]);
        }

        // KV-cache residency: `tokens` new cache entries, sharded by TP.
        let kv_per_gpu = toks * kv_bytes_per_token(m) / tp as f64;
        let kv: Vec<OpId> = gpus
            .iter()
            .enumerate()
            .map(|(r, &g)| p.kv_append(g, kv_per_gpu, &[chain[r]]))
            .collect();

        // Sampled token ids leave rank 0 for the serving frontend.
        let g0 = gpus[0];
        let done = p.barrier(&kv);
        p.transfer(
            MemLoc::Gpu(g0),
            MemLoc::Cpu(ctx.cluster.gpu_socket(g0)),
            (emitting * 4).max(4) as f64,
            "token_d2h",
            ctx.gpu_track(g0),
            &[done],
        );
        Ok(p.finish())
    }
}

/// Layers grouped per weight-stream/collective bucket (mirrors
/// [`IterCtx::comm_bucket_layers`] sizing: bounded DAG regardless of
/// depth).
fn bucket_layers(model: &GptConfig) -> usize {
    model.num_layers.div_ceil(24).max(1)
}

/// Rounds a KV length up to the lowering-cache granularity (64 tokens):
/// decode plans for the same `(batch, kv_bucket(kv_len))` share one
/// lowered DAG, so a serving run lowers O(buckets), not O(steps).
pub fn kv_bucket(kv_len: usize) -> usize {
    kv_len.div_ceil(64).max(1) * 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;
    use crate::lower::lower;
    use crate::options::TrainOptions;
    use zerosim_hw::{Cluster, ClusterSpec, NvmeId, VolumeId};
    use zerosim_simkit::{DagEngine, SimTime};

    fn fixtures() -> (Cluster, GptConfig, TrainOptions, Calibration) {
        (
            Cluster::new(ClusterSpec::default()).unwrap(),
            GptConfig::paper_model_with_params(1.4),
            TrainOptions::single_node(),
            Calibration::default(),
        )
    }

    fn run_plan(cluster: &mut Cluster, plan: &WorkloadPlan, calib: &Calibration) -> f64 {
        let mut lowered = lower(plan, cluster, calib).unwrap();
        let dag = lowered.stamp(0);
        let mut eng = DagEngine::new(cluster.resource_slots());
        eng.run(cluster.net_mut(), dag, SimTime::ZERO, None)
            .unwrap()
            .makespan()
            .as_secs()
    }

    #[test]
    fn dense_prefill_and_decode_plans_validate_and_run() {
        let (mut c, m, o, k) = fixtures();
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let s = ServingStrategy::Dense;
        let prefill = s.plan_prefill(&ctx, 512, 4).unwrap();
        assert_eq!(prefill.kind(), WorkloadKind::Prefill);
        prefill.validate(&c).unwrap();
        let decode = s.plan_decode(&ctx, 3, 4, 640).unwrap();
        assert_eq!(decode.kind(), WorkloadKind::Decode);
        decode.validate(&c).unwrap();
        // Prefill crunches 128x the tokens; it must cost more wall-clock.
        let t_prefill = run_plan(&mut c, &prefill, &k);
        let t_decode = run_plan(&mut c, &decode, &k);
        assert!(
            t_prefill > t_decode,
            "prefill {t_prefill}s vs decode {t_decode}s"
        );
        // KV accounting: 512 prompt tokens vs 4 decode tokens.
        let per_tok = kv_bytes_per_token(&m);
        assert!((prefill.kv_append_bytes() - 512.0 * per_tok).abs() < 1.0);
        assert!((decode.kv_append_bytes() - 4.0 * per_tok).abs() < 1.0);
    }

    #[test]
    fn nvme_streaming_moves_the_weights_every_step() {
        let (mut c, m, o, k) = fixtures();
        let d = |drive| NvmeId { node: 0, drive };
        let vol = c.create_volume(vec![d(0), d(1)]);
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let s = ServingStrategy::NvmeStreamed {
            placement: InfinityPlacement::new(vec![vol]),
        };
        let decode = s.plan_decode(&ctx, 0, 2, 64).unwrap();
        decode.validate(&c).unwrap();
        // The full FP16 model crosses NVMe + PCIe once per step.
        let weights = m.num_params() * WEIGHT_BYTES_PER_PARAM;
        assert!(
            decode.staging_bytes() > 2.0 * weights * 0.99,
            "staged {} vs weights {}",
            decode.staging_bytes(),
            weights
        );
        // Dense decode stages only token ids.
        let dense = ServingStrategy::Dense.plan_decode(&ctx, 0, 2, 64).unwrap();
        assert!(dense.staging_bytes() < 1e6);
    }

    #[test]
    fn kv_bucketing_is_monotone_and_coarse() {
        assert_eq!(kv_bucket(0), 64);
        assert_eq!(kv_bucket(1), 64);
        assert_eq!(kv_bucket(64), 64);
        assert_eq!(kv_bucket(65), 128);
        assert!(kv_bucket(1000) >= 1000);
    }

    #[test]
    fn serving_memory_plans_differ_by_residency() {
        let (mut c, m, o, k) = fixtures();
        let d = |drive| NvmeId { node: 0, drive };
        let _ = c.create_volume(vec![d(0), d(1)]);
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let dense = ServingStrategy::Dense.plan_memory(&ctx);
        let streamed = ServingStrategy::NvmeStreamed {
            placement: InfinityPlacement::new(vec![VolumeId(0)]),
        }
        .plan_memory(&ctx);
        assert!(dense.per_gpu_bytes > streamed.per_gpu_bytes);
        assert_eq!(dense.nvme_bytes, 0.0);
        assert!(streamed.nvme_bytes > 0.0);
    }
}
