//! ZL002 — per-shard produced/consumed byte conservation.
//!
//! Stricter than `IterPlan::validate`: instead of trusting emission
//! order, the pass computes exact happens-before ancestor sets
//! ([`crate::graph::Ancestors`]) and requires that every op reading
//! staged bytes out of host DRAM or the NVMe pool can account for them —
//! either as resident state from the [`MemoryPlan`] or as bytes some
//! *ancestor* op actually moved there. An op that consumes bytes nobody
//! produced is reading garbage; the simulator would happily time the
//! transfer anyway, which is exactly why this must be a static check.
//!
//! GPU-sourced transfers are exempt (compute materializes activations
//! and gradients), as are same-node host-to-host copies (the input
//! pipeline's `host_prep` stages fresh batch bytes from the data loader).
//!
//! Codec-aware accounting: an op's `bytes` field is the full-precision
//! payload, but a declared [`zerosim_strategies::Codec`] means only
//! `bytes x ratio` encoded bytes actually move — pools are debited and
//! credited at the encoded size. The dual obligation: every `dequant`
//! marker asserts its inputs are encoded bytes, so some transfer-class
//! ancestor must *declare* the narrowing codec. Without the declaration
//! the decode consumes quantized bytes nobody produced — the deny is
//! sited at the nearest transfer ancestor (exactly the op whose codec
//! annotation is missing), which is what separates ZeRO++-style
//! quantization from a silent byte loss.

use std::collections::HashSet;

use zerosim_hw::{IoDir, MemLoc};
use zerosim_strategies::PlanOp;

use crate::diag::{LintCode, Site};
use crate::graph::Ancestors;
use crate::pass::{Artifacts, Pass, Sink};

/// ZL002 (see module docs).
#[derive(Debug)]
pub struct ByteConservationPass;

/// A byte pool an op can stage into / consume from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pool {
    /// Host DRAM of one node.
    Cpu(usize),
    /// The aggregate NVMe scratch pool.
    Nvme,
}

impl Pool {
    fn describe(self) -> String {
        match self {
            Pool::Cpu(n) => format!("host DRAM of node {n}"),
            Pool::Nvme => "the NVMe pool".to_string(),
        }
    }
}

fn gb(bytes: f64) -> f64 {
    (bytes / 1e8).round() / 10.0
}

impl Pass for ByteConservationPass {
    fn code(&self) -> LintCode {
        LintCode::ByteConservation
    }

    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>) {
        let Some(plan) = art.plan else {
            return;
        };
        let nodes = plan.nodes();
        let anc = Ancestors::compute(
            |i| nodes[i].deps.iter().map(|d| d.index()).collect(),
            nodes.len(),
        );

        // Every op that moves bytes *into* a pool, with its plan index.
        // Declared codecs shrink the staged volume to the encoded size.
        let mut producers: Vec<(usize, Pool, f64)> = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            let wire = plan.codec_ratio_at(i);
            match &n.op {
                PlanOp::TierTransfer { dst, bytes, .. } => match dst {
                    MemLoc::Cpu(s) => producers.push((i, Pool::Cpu(s.node), *bytes * wire)),
                    MemLoc::Nvme(_) => producers.push((i, Pool::Nvme, *bytes * wire)),
                    MemLoc::Gpu(_) => {}
                },
                PlanOp::VolumeIo {
                    dir: IoDir::Read,
                    socket,
                    bytes,
                    ..
                } => producers.push((i, Pool::Cpu(socket.node), *bytes * wire)),
                PlanOp::VolumeIo {
                    dir: IoDir::Write,
                    bytes,
                    ..
                } => producers.push((i, Pool::Nvme, *bytes * wire)),
                _ => {}
            }
        }

        // Resident state is a legitimate source of bytes.
        let cpu_credit = art.memory.map_or(0.0, |m| m.per_node_cpu_bytes);
        let nvme_credit = art.memory.map_or(0.0, |m| m.nvme_bytes);

        // Report only the first violation per pool: once one op reads
        // phantom bytes, everything downstream is tainted and repeating
        // the finding adds noise, not signal.
        let mut reported: HashSet<Pool> = HashSet::new();

        for (i, n) in nodes.iter().enumerate() {
            let wire = plan.codec_ratio_at(i);
            let consumed: Option<(Pool, f64)> = match &n.op {
                PlanOp::TierTransfer {
                    src: MemLoc::Cpu(s),
                    dst,
                    bytes,
                    ..
                } => {
                    // Same-node host->host staging materializes fresh
                    // bytes (data-loader output); don't charge the pool.
                    if matches!(dst, MemLoc::Cpu(d) if d.node == s.node) {
                        None
                    } else {
                        Some((Pool::Cpu(s.node), *bytes))
                    }
                }
                PlanOp::TierTransfer {
                    src: MemLoc::Nvme(_),
                    bytes,
                    ..
                } => Some((Pool::Nvme, *bytes)),
                PlanOp::VolumeIo {
                    dir: IoDir::Read,
                    bytes,
                    ..
                } => Some((Pool::Nvme, *bytes)),
                PlanOp::VolumeIo {
                    dir: IoDir::Write,
                    socket,
                    bytes,
                    ..
                } => Some((Pool::Cpu(socket.node), *bytes)),
                _ => None,
            };
            let Some((pool, bytes)) = consumed else {
                continue;
            };
            let bytes = bytes * wire;
            let credit = match pool {
                Pool::Cpu(_) => cpu_credit,
                Pool::Nvme => nvme_credit,
            };
            let produced: f64 = producers
                .iter()
                .filter(|(p, ploc, _)| *ploc == pool && anc.is_ancestor(*p, i))
                .map(|(_, _, b)| b)
                .sum();
            // One byte of absolute slack plus relative tolerance keeps
            // f64 accumulation noise out of the verdict.
            if bytes > (credit + produced) * (1.0 + 1e-9) + 1.0 && reported.insert(pool) {
                sink.report(
                    LintCode::ByteConservation,
                    Site::PlanOp(i),
                    format!(
                        "op consumes {:.1} GB from {} but only {:.1} GB are resident \
                         or produced by its ancestors",
                        gb(bytes),
                        pool.describe(),
                        gb(credit + produced)
                    ),
                    "add the producing transfer (or a dependency on it) before this op".to_string(),
                );
            }
        }

        // Decode-without-encoder: a `dequant` marker consumes encoded
        // bytes, so some transfer-class ancestor must declare a narrowing
        // codec. The deny is sited at the nearest transfer ancestor —
        // exactly the op whose codec declaration went missing.
        let mut reported_ops: HashSet<usize> = HashSet::new();
        for (i, n) in nodes.iter().enumerate() {
            let PlanOp::FixedCompute { label, .. } = &n.op else {
                continue;
            };
            if !label.starts_with("dequant") {
                continue;
            }
            let mut nearest_transfer: Option<usize> = None;
            let mut has_encoder = false;
            for (p, pn) in nodes.iter().enumerate() {
                if p == i || !anc.is_ancestor(p, i) {
                    continue;
                }
                let transfer_class = matches!(
                    pn.op,
                    PlanOp::Collective { .. } | PlanOp::TierTransfer { .. }
                );
                if !transfer_class {
                    continue;
                }
                if nearest_transfer.is_none_or(|best| p > best) {
                    nearest_transfer = Some(p);
                }
                if plan
                    .codec_at(p)
                    .is_some_and(zerosim_strategies::Codec::is_narrowing)
                {
                    has_encoder = true;
                    break;
                }
            }
            if has_encoder {
                continue;
            }
            let site_op = nearest_transfer.unwrap_or(i);
            if reported_ops.insert(site_op) {
                sink.report(
                    LintCode::ByteConservation,
                    Site::PlanOp(site_op),
                    format!(
                        "dequantize marker at op {i} has no ancestor transfer declaring \
                         a narrowing codec: the decoded bytes were never produced"
                    ),
                    "declare the codec on the quantized transfer (set_codec) or drop \
                     the decode marker"
                        .to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use crate::pass::{AnalysisReport, PassManager};
    use zerosim_hw::{Cluster, ClusterSpec, GpuId, SocketId};
    use zerosim_strategies::{IterPlan, MemoryPlan, PhaseStage};

    fn run(plan: &IterPlan, memory: Option<&MemoryPlan>) -> AnalysisReport {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(ByteConservationPass));
        let mut art = Artifacts::new(&cluster).with_plan(plan);
        if let Some(m) = memory {
            art = art.with_memory(m);
        }
        pm.run(&art)
    }

    fn cpu0() -> MemLoc {
        MemLoc::Cpu(SocketId { node: 0, socket: 0 })
    }

    fn gpu0() -> MemLoc {
        MemLoc::Gpu(GpuId { node: 0, gpu: 0 })
    }

    #[test]
    fn produced_then_consumed_is_clean() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        let d2h = plan.push(
            PlanOp::TierTransfer {
                src: gpu0(),
                dst: cpu0(),
                bytes: 4e9,
                label: "d2h",
                track: 0,
            },
            &[],
        );
        plan.set_phase(PhaseStage::Step, 0);
        plan.push(
            PlanOp::TierTransfer {
                src: cpu0(),
                dst: gpu0(),
                bytes: 4e9,
                label: "h2d",
                track: 0,
            },
            &[d2h],
        );
        assert!(run(&plan, None).is_clean());
    }

    #[test]
    fn consuming_unproduced_bytes_fires_once_at_the_op() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Step, 0);
        // Two reads of phantom host bytes: only the first is reported.
        for _ in 0..2 {
            plan.push(
                PlanOp::TierTransfer {
                    src: cpu0(),
                    dst: gpu0(),
                    bytes: 4e9,
                    label: "h2d",
                    track: 0,
                },
                &[],
            );
        }
        let r = run(&plan, None);
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.diagnostics[0].site, Site::PlanOp(0));
        assert!(r.diagnostics[0].message.contains("host DRAM of node 0"));
    }

    #[test]
    fn resident_state_and_staging_are_credited() {
        let mut plan = IterPlan::new();
        // Same-node host staging is exempt as a consumer and counts as a
        // producer for downstream h2d.
        let prep = plan.push(
            PlanOp::TierTransfer {
                src: cpu0(),
                dst: cpu0(),
                bytes: 2e9,
                label: "host_prep",
                track: 0,
            },
            &[],
        );
        plan.set_phase(PhaseStage::Forward, 0);
        plan.push(
            PlanOp::TierTransfer {
                src: cpu0(),
                dst: gpu0(),
                bytes: 2e9,
                label: "h2d",
                track: 0,
            },
            &[prep],
        );
        assert!(run(&plan, None).is_clean());

        // Resident DRAM also covers reads without explicit producers.
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Step, 0);
        plan.push(
            PlanOp::TierTransfer {
                src: cpu0(),
                dst: gpu0(),
                bytes: 4e9,
                label: "h2d",
                track: 0,
            },
            &[],
        );
        let m = MemoryPlan {
            per_gpu_bytes: 0.0,
            total_gpu_bytes: 0.0,
            per_node_cpu_bytes: 8e9,
            total_cpu_bytes: 8e9,
            nvme_bytes: 0.0,
            gpu_breakdown: Vec::new(),
        };
        assert!(run(&plan, Some(&m)).is_clean());
    }

    #[test]
    fn producer_must_be_an_ancestor_not_just_earlier() {
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Backward, 0);
        // Producer exists earlier in emission order but the consumer does
        // not depend on it: emission order proves nothing.
        plan.push(
            PlanOp::TierTransfer {
                src: gpu0(),
                dst: cpu0(),
                bytes: 4e9,
                label: "d2h",
                track: 0,
            },
            &[],
        );
        plan.set_phase(PhaseStage::Step, 0);
        plan.push(
            PlanOp::TierTransfer {
                src: cpu0(),
                dst: gpu0(),
                bytes: 4e9,
                label: "h2d",
                track: 0,
            },
            &[],
        );
        let r = run(&plan, None);
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.diagnostics[0].site, Site::PlanOp(1));
    }
}
