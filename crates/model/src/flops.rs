//! Analytic FLOP counting — the simulated stand-in for the DeepSpeed FLOPS
//! profiler the paper uses to report compute throughput (Sec. III-B3).

use crate::config::GptConfig;

/// FLOP counts for one training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationFlops {
    /// Forward-pass FLOPs.
    pub forward: f64,
    /// Backward-pass FLOPs (2× forward for matmul-dominated models).
    pub backward: f64,
}

impl IterationFlops {
    /// Total FLOPs of the iteration.
    pub fn total(&self) -> f64 {
        self.forward + self.backward
    }
}

impl GptConfig {
    /// Forward FLOPs for `tokens` tokens: `2 P` per token for the dense
    /// matmuls plus the `4 s h` attention score/context terms per layer.
    pub fn forward_flops(&self, tokens: f64) -> f64 {
        let h = self.hidden_size as f64;
        let s = self.seq_len as f64;
        let dense = 2.0 * self.num_params() * tokens;
        let attention = 4.0 * self.num_layers as f64 * s * h * tokens;
        dense + attention
    }

    /// FLOPs of a full iteration over `tokens` tokens (backward = 2×
    /// forward, the convention the DeepSpeed profiler uses).
    pub fn iteration_flops(&self, tokens: f64) -> IterationFlops {
        let forward = self.forward_flops(tokens);
        IterationFlops {
            forward,
            backward: 2.0 * forward,
        }
    }

    /// Tokens processed per iteration with `per_gpu_batch` sequences on
    /// each of `num_gpus` GPUs.
    pub fn tokens_per_iteration(&self, per_gpu_batch: usize, num_gpus: usize) -> f64 {
        (self.seq_len * per_gpu_batch * num_gpus) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_p_t_dominates() {
        let c = GptConfig::default();
        let tokens = c.tokens_per_iteration(16, 4);
        let f = c.iteration_flops(tokens);
        let six_pt = 6.0 * c.num_params() * tokens;
        assert!(f.total() > six_pt);
        assert!(
            f.total() < 1.1 * six_pt,
            "attention should be a small correction"
        );
        assert_eq!(f.backward, 2.0 * f.forward);
    }

    #[test]
    fn tokens_per_iteration_matches_paper_batch() {
        let c = GptConfig::default();
        // 16 sequences × 256 tokens × 4 GPUs.
        assert_eq!(c.tokens_per_iteration(16, 4), 16384.0);
    }

    #[test]
    fn flops_scale_linearly_in_tokens() {
        let c = GptConfig::default();
        let f1 = c.forward_flops(1000.0);
        let f2 = c.forward_flops(2000.0);
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
    }
}
