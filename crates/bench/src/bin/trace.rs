//! Exports the simulated timeline of one training configuration as a
//! Chrome trace (load in `chrome://tracing` or Perfetto) — the simulated
//! counterpart of the paper's nsys captures (Fig. 5).
//!
//! Usage: `trace <strategy> <billions> <nodes> [output.json]`
//! where strategy ∈ {ddp, megatron, zero1, zero2, zero3, zero2-cpu,
//! zero3-cpu, infinity}.

use zerosim_core::{to_chrome_trace, RunConfig, TrainingSim};
use zerosim_hw::{ClusterSpec, NvmeId};
use zerosim_model::GptConfig;
use zerosim_strategies::{InfinityPlacement, Strategy, TrainOptions, ZeroStage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: trace <strategy> <billions> <nodes> [output.json]");
        eprintln!("strategies: ddp megatron zero1 zero2 zero3 zero2-cpu zero3-cpu infinity");
        std::process::exit(2);
    }
    let billions: f64 = args[1].parse()?;
    let nodes: usize = args[2].parse()?;
    let out = args.get(3).cloned().unwrap_or_else(|| "trace.json".into());

    let mut sim = TrainingSim::new(ClusterSpec::default())?;
    let strategy = match args[0].as_str() {
        "ddp" => Strategy::Ddp,
        "megatron" => Strategy::Megatron {
            tp: 4 * nodes,
            pp: 1,
        },
        "zero1" => Strategy::Zero {
            stage: ZeroStage::One,
        },
        "zero2" => Strategy::Zero {
            stage: ZeroStage::Two,
        },
        "zero3" => Strategy::Zero {
            stage: ZeroStage::Three,
        },
        "zero2-cpu" => Strategy::ZeroOffload {
            stage: ZeroStage::Two,
            offload_params: false,
        },
        "zero3-cpu" => Strategy::ZeroOffload {
            stage: ZeroStage::Three,
            offload_params: false,
        },
        "infinity" => {
            let d = |drive| NvmeId { node: 0, drive };
            let vol = sim.cluster_mut().create_volume(vec![d(0), d(1)]);
            Strategy::ZeroInfinity {
                offload_params: false,
                placement: InfinityPlacement::new(vec![vol]),
            }
        }
        other => {
            eprintln!("unknown strategy {other:?}");
            std::process::exit(2);
        }
    };

    let opts = if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    };
    let model = GptConfig::paper_model_with_params(billions);
    let cfg = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    let report = sim.run(&strategy, &model, &opts, &cfg)?;
    std::fs::write(&out, to_chrome_trace(&report.spans))?;
    eprintln!(
        "{}: {:.3}s iteration, {:.0} TFLOP/s — {} spans written to {out}",
        report.strategy,
        report.iter_time.as_secs(),
        report.throughput_tflops(),
        report.spans.spans().len(),
    );
    Ok(())
}
