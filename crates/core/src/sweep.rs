//! Parallel characterization sweeps.
//!
//! A *sweep* runs many independent training configurations — different
//! strategies, model sizes, cluster shapes, or fault schedules — and
//! collects one [`TrainingReport`] per configuration. Runs share nothing:
//! each [`SweepSpec`] describes a complete world (cluster spec, NVMe
//! volumes, strategy, model, options, run config, optional faults), and
//! execution builds a fresh [`TrainingSim`] owning its own
//! [`zerosim_hw::Cluster`] from scratch. That independence is what makes
//! the fan-out embarrassingly parallel *and* deterministic:
//!
//! * **Deterministic** — a run's result depends only on its spec, never on
//!   scheduling. [`SweepRunner::run_parallel`] returns results in input
//!   order, so a sweep over `N` specs produces the same ordered
//!   `Vec<SweepRun>` (and the same [`SweepRun::digest`] vector) whether it
//!   runs on 1 worker or 8.
//! * **Parallel** — fan-out rides on
//!   [`zerosim_testkit::pool::ThreadPool`], the workspace's hermetic
//!   `std::thread`-only work-stealing pool.
//!
//! ```
//! use zerosim_core::{RunConfig, SweepRunner, SweepSpec};
//! use zerosim_strategies::{Strategy, TrainOptions};
//! use zerosim_model::GptConfig;
//!
//! # fn main() -> Result<(), zerosim_core::CoreError> {
//! let specs: Vec<SweepSpec> = [0.8, 1.4]
//!     .iter()
//!     .map(|&b| {
//!         SweepSpec::new(
//!             format!("ddp-{b}B"),
//!             Strategy::Ddp,
//!             GptConfig::paper_model_with_params(b),
//!             TrainOptions::single_node(),
//!         )
//!         .with_run(RunConfig::quick())
//!     })
//!     .collect();
//! let runs = SweepRunner::new(2).run_parallel(specs)?;
//! assert_eq!(runs.len(), 2);
//! assert!(runs[0].report.throughput_tflops() > 0.0);
//! # Ok(())
//! # }
//! ```

use zerosim_hw::{ClusterSpec, NvmeId};
use zerosim_model::GptConfig;
use zerosim_simkit::EngineMode;
use zerosim_strategies::{Calibration, Strategy, TrainOptions};
use zerosim_testkit::pool::ThreadPool;

use crate::engine::{RunConfig, TrainingSim};
use crate::error::CoreError;
use crate::faults::FaultConfig;
use crate::report::TrainingReport;

/// A complete, self-contained description of one characterization run.
///
/// Everything needed to rebuild the run from nothing lives here, so a
/// spec can be executed on any worker thread (or serially) with an
/// identical outcome.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Caller-chosen identifier carried through to [`SweepRun::label`].
    pub label: String,
    /// The cluster to build (each run owns a fresh one).
    pub cluster: ClusterSpec,
    /// Performance-model constants.
    pub calibration: Calibration,
    /// NVMe volumes to create, in order, before the run — volume `i`
    /// here becomes `VolumeId(i)`, so
    /// [`zerosim_strategies::InfinityPlacement`] indices in `strategy`
    /// refer to positions in this list.
    pub volumes: Vec<Vec<NvmeId>>,
    /// The training strategy to characterize.
    pub strategy: Strategy,
    /// The model to train.
    pub model: GptConfig,
    /// Topology/batching options.
    pub opts: TrainOptions,
    /// Sampling/averaging configuration.
    pub run: RunConfig,
    /// When `Some`, the run goes through
    /// [`TrainingSim::run_resilient`] with this fault schedule; when
    /// `None`, through the plain [`TrainingSim::run`].
    pub faults: Option<FaultConfig>,
    /// The DAG-executor implementation to run with. Part of the spec so a
    /// differential sweep can rebuild the identical world on both engines;
    /// the digest must not depend on this choice.
    pub engine: EngineMode,
}

impl SweepSpec {
    /// A spec over the default paper cluster with default calibration,
    /// default [`RunConfig`], no NVMe volumes, and no faults.
    pub fn new(
        label: impl Into<String>,
        strategy: Strategy,
        model: GptConfig,
        opts: TrainOptions,
    ) -> Self {
        SweepSpec {
            label: label.into(),
            cluster: ClusterSpec::default(),
            calibration: Calibration::default(),
            volumes: Vec::new(),
            strategy,
            model,
            opts,
            run: RunConfig::default(),
            faults: None,
            engine: EngineMode::default(),
        }
    }

    /// Replaces the cluster spec.
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Replaces the calibration constants.
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Replaces the run configuration.
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Appends an NVMe volume (created before the run, in call order).
    pub fn with_volume(mut self, members: Vec<NvmeId>) -> Self {
        self.volumes.push(members);
        self
    }

    /// Attaches a fault schedule, switching execution to
    /// [`TrainingSim::run_resilient`].
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Pins the DAG-executor implementation for this spec.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Builds a fresh simulator and executes this spec to completion.
    ///
    /// # Errors
    /// Whatever [`TrainingSim::new`], [`TrainingSim::run`], or
    /// [`TrainingSim::run_resilient`] return for this configuration.
    pub fn execute(&self) -> Result<SweepRun, CoreError> {
        let mut sim = TrainingSim::with_calibration(self.cluster.clone(), self.calibration)?;
        sim.set_engine_mode(self.engine);
        for members in &self.volumes {
            sim.cluster_mut().create_volume(members.clone());
        }
        let report = match &self.faults {
            Some(faults) => {
                sim.run_resilient(&self.strategy, &self.model, &self.opts, &self.run, faults)?
            }
            None => sim.run(&self.strategy, &self.model, &self.opts, &self.run)?,
        };
        Ok(SweepRun {
            label: self.label.clone(),
            digest: report.digest(),
            report,
        })
    }
}

/// One completed sweep entry: the spec's label, its full report, and the
/// report's measurement digest (captured eagerly so callers can compare
/// sweeps without holding reports).
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The originating [`SweepSpec::label`].
    pub label: String,
    /// [`TrainingReport::digest`] of `report`.
    pub digest: u64,
    /// The full characterization result.
    pub report: TrainingReport,
}

/// Fans [`SweepSpec`]s across a thread pool; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct SweepRunner {
    pool: ThreadPool,
    requested: usize,
}

impl SweepRunner {
    /// A runner with `workers` threads (0 or 1 runs inline, serially).
    ///
    /// The effective width is clamped to the machine's
    /// [`std::thread::available_parallelism`]: CPU-bound sweep workers
    /// gain nothing from oversubscription, they just add pool overhead
    /// (measured as a 0.84× "speedup" at 8 workers on a 1-core box).
    /// Determinism is unaffected — results are input-ordered at any
    /// width — and [`SweepRunner::requested_workers`] preserves the
    /// caller's ask for reporting.
    pub fn new(workers: usize) -> Self {
        let requested = workers.max(1);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        SweepRunner {
            pool: ThreadPool::new(requested.min(cores)),
            requested,
        }
    }

    /// A runner as wide as the machine.
    pub fn auto() -> Self {
        let pool = ThreadPool::auto();
        let requested = pool.workers();
        SweepRunner { pool, requested }
    }

    /// The effective worker count (requested, clamped to the machine).
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The worker count the caller asked for, before clamping.
    pub fn requested_workers(&self) -> usize {
        self.requested
    }

    /// Executes every spec, in parallel, returning results in **input
    /// order** regardless of worker count or scheduling. The first failed
    /// spec (by input order) turns the whole sweep into its error —
    /// matching what a serial loop would report.
    ///
    /// # Errors
    /// The input-order-first [`CoreError`] among failed specs, if any.
    pub fn run_parallel(&self, specs: Vec<SweepSpec>) -> Result<Vec<SweepRun>, CoreError> {
        self.pool
            .map(specs, |spec| spec.execute())
            .into_iter()
            .collect()
    }

    /// Executes every spec, in parallel, returning each spec's individual
    /// outcome in **input order** — one failed configuration does not mask
    /// the others. This is what `planfind` uses to simulate a candidate
    /// set where some survivors may still fail at run time.
    pub fn run_each(&self, specs: Vec<SweepSpec>) -> Vec<Result<SweepRun, CoreError>> {
        self.pool.map(specs, |spec| spec.execute())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_specs() -> Vec<SweepSpec> {
        ["PyTorch DDP", "z3"]
            .iter()
            .enumerate()
            .map(|(i, label)| {
                let strategy = if i == 0 {
                    Strategy::Ddp
                } else {
                    Strategy::Zero {
                        stage: zerosim_strategies::ZeroStage::Three,
                    }
                };
                SweepSpec::new(
                    *label,
                    strategy,
                    GptConfig::paper_model_with_params(1.4),
                    TrainOptions::single_node(),
                )
                .with_run(RunConfig::quick())
            })
            .collect()
    }

    #[test]
    fn parallel_sweep_matches_serial_execution() {
        let serial: Vec<SweepRun> = quick_specs().iter().map(|s| s.execute().unwrap()).collect();
        for workers in [1, 3] {
            let par = SweepRunner::new(workers)
                .run_parallel(quick_specs())
                .unwrap();
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!(p.label, s.label, "w={workers}");
                assert_eq!(p.digest, s.digest, "w={workers} label={}", p.label);
            }
        }
    }

    #[test]
    fn sweep_results_keep_input_order() {
        let runs = SweepRunner::new(2).run_parallel(quick_specs()).unwrap();
        assert_eq!(runs[0].label, "PyTorch DDP");
        assert_eq!(runs[1].label, "z3");
        assert_eq!(runs[0].report.strategy, "PyTorch DDP");
    }

    #[test]
    fn failing_spec_surfaces_input_order_first_error() {
        let mut specs = quick_specs();
        // An impossible model: DDP replicates everything on one GPU.
        specs[0].model = GptConfig::paper_model_with_params(175.0);
        let err = SweepRunner::new(2).run_parallel(specs).unwrap_err();
        assert!(matches!(err, CoreError::DoesNotFit { .. }), "{err}");
    }

    #[test]
    fn run_each_isolates_failures_per_spec() {
        let mut specs = quick_specs();
        specs[0].model = GptConfig::paper_model_with_params(175.0);
        let outcomes = SweepRunner::new(2).run_each(specs);
        assert_eq!(outcomes.len(), 2);
        assert!(matches!(
            outcomes[0],
            Err(CoreError::DoesNotFit { .. }) | Err(CoreError::InvalidConfig(_))
        ));
        assert_eq!(outcomes[1].as_ref().unwrap().label, "z3");
    }

    #[test]
    fn faulted_spec_runs_resilient_path() {
        let spec = quick_specs().remove(1).with_faults(FaultConfig::healthy());
        let run = spec.execute().unwrap();
        assert!(run.report.resilience.is_some());
        // A healthy resilient run measures exactly what the plain run does.
        let plain = quick_specs().remove(1).execute().unwrap();
        assert_eq!(run.digest, plain.digest);
    }

    #[test]
    fn reports_carry_solver_stats() {
        let runs = SweepRunner::new(1).run_parallel(quick_specs()).unwrap();
        for run in &runs {
            assert!(run.report.solver.solves > 0, "{}", run.label);
            assert!(run.report.solver.links_touched > 0, "{}", run.label);
        }
    }
}
