//! The characterization engine: runs a strategy on the simulated cluster
//! and measures throughput, bandwidth, memory, and timelines — the
//! simulated equivalent of the paper's measurement methodology
//! (Sec. III-B).

use zerosim_hw::{Cluster, ClusterSpec, LinkClass};
use zerosim_model::GptConfig;
use zerosim_simkit::{BandwidthRecorder, DagEngine, SimTime};
use zerosim_strategies::{lower, Calibration, IterCtx, StrategyPlan, TrainOptions};

use crate::error::CoreError;
use crate::report::{rank_hot_links, BandwidthReport, TrainingReport};

/// How a characterization run samples and averages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Warm-up iterations excluded from all measurements (the paper warms
    /// up before collecting from the fifth iteration).
    pub warmup_iters: usize,
    /// Measured iterations.
    pub measure_iters: usize,
    /// Bandwidth sampling bucket (hardware-counter sampling period).
    pub bucket: SimTime,
    /// Run even if the memory plan does not fit (for what-if studies).
    pub allow_overflow: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup_iters: 1,
            measure_iters: 3,
            bucket: SimTime::from_ms(50.0),
            allow_overflow: false,
        }
    }
}

impl RunConfig {
    /// A faster configuration for sweeps: no warm-up, one measured
    /// iteration.
    pub fn quick() -> Self {
        RunConfig {
            warmup_iters: 0,
            measure_iters: 1,
            ..Self::default()
        }
    }
}

/// Owns a simulated cluster and characterizes training runs on it.
///
/// ```
/// use zerosim_core::TrainingSim;
/// use zerosim_hw::ClusterSpec;
/// use zerosim_model::GptConfig;
/// use zerosim_strategies::{Strategy, TrainOptions};
///
/// # fn main() -> Result<(), zerosim_core::CoreError> {
/// let mut sim = TrainingSim::new(ClusterSpec::default())?;
/// let report = sim.run(
///     &Strategy::Ddp,
///     &GptConfig::paper_model_with_params(1.4),
///     &TrainOptions::single_node(),
///     &zerosim_core::RunConfig::quick(),
/// )?;
/// assert!(report.throughput_tflops() > 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TrainingSim {
    cluster: Cluster,
    calib: Calibration,
}

impl TrainingSim {
    /// Builds a simulator over a fresh cluster.
    ///
    /// # Errors
    /// Returns [`CoreError::BadCluster`] for inconsistent specs.
    pub fn new(spec: ClusterSpec) -> Result<Self, CoreError> {
        Ok(TrainingSim {
            cluster: Cluster::new(spec).map_err(CoreError::BadCluster)?,
            calib: Calibration::default(),
        })
    }

    /// Builds a simulator with custom calibration constants.
    ///
    /// # Errors
    /// Returns [`CoreError::BadCluster`] for inconsistent specs.
    pub fn with_calibration(spec: ClusterSpec, calib: Calibration) -> Result<Self, CoreError> {
        Ok(TrainingSim {
            cluster: Cluster::new(spec).map_err(CoreError::BadCluster)?,
            calib,
        })
    }

    /// The simulated cluster (e.g. to create NVMe volumes before an
    /// Infinity run).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The calibration constants in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Characterizes one training configuration.
    ///
    /// The strategy's [`zerosim_strategies::IterPlan`] is lowered to a
    /// task graph **once**; each warm-up and measured iteration only
    /// re-stamps the jitter-seeded compute durations
    /// ([`zerosim_strategies::LoweredPlan::stamp`]) before execution.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] if the strategy rejects the
    /// configuration; [`CoreError::DoesNotFit`] if the memory plan
    /// overflows a tier (and `cfg.allow_overflow` is false);
    /// [`CoreError::Sim`] if the DAG deadlocks (cannot happen for the
    /// built-in strategies).
    pub fn run(
        &mut self,
        strategy: &dyn StrategyPlan,
        model: &GptConfig,
        opts: &TrainOptions,
        cfg: &RunConfig,
    ) -> Result<TrainingReport, CoreError> {
        let ctx = IterCtx {
            cluster: &self.cluster,
            model,
            opts,
            calib: &self.calib,
        };
        let memory = strategy.plan_memory(&ctx)?;
        if !cfg.allow_overflow {
            if let Some(tier) = memory.bottleneck(&self.cluster) {
                let requested = match tier {
                    "gpu" => memory.per_gpu_bytes,
                    "cpu" => memory.per_node_cpu_bytes,
                    _ => memory.nvme_bytes,
                };
                return Err(CoreError::DoesNotFit { tier, requested });
            }
        }

        // Plan + lower once: structure is iteration-invariant.
        let plan = strategy.plan_iteration(&ctx)?;
        let mut lowered = lower(&plan, &self.cluster, &self.calib)?;
        let plan_lowerings = 1usize;

        let mut engine = DagEngine::new(self.cluster.resource_slots());

        // Warm-up (unrecorded). Each iteration re-stamps with its own
        // jitter seed so the measured window shows realistic run-to-run
        // variation.
        let mut t = SimTime::ZERO;
        let mut seed = opts.jitter_seed;
        for _ in 0..cfg.warmup_iters {
            let dag = lowered.stamp(seed);
            seed += 1;
            t = engine.run(self.cluster.net_mut(), dag, t, None)?.finished;
        }
        engine.take_spans(); // discard warm-up spans

        // Measured iterations.
        let mut rec = BandwidthRecorder::with_origin(cfg.bucket, t);
        let mut total = SimTime::ZERO;
        let n_measured = cfg.measure_iters.max(1);
        for _ in 0..n_measured {
            let dag = lowered.stamp(seed);
            seed += 1;
            let out = engine.run(self.cluster.net_mut(), dag, t, Some(&mut rec))?;
            total += out.makespan();
            t = out.finished;
        }
        let iter_time = total / (n_measured as u64);

        // Per-(node, class) aggregation, Table IV style.
        let mut bandwidth = BandwidthReport::new(cfg.bucket);
        for node in 0..opts.nodes {
            for class in LinkClass::TABLE_IV {
                let links = self.cluster.links(node, class);
                let stats = rec.stats(links);
                let series = rec.aggregate_series(links);
                bandwidth.insert(node, class, stats, series);
            }
        }

        // Per-link "hot wires" ranking across every physical link class.
        let hot_links = rank_hot_links(&self.cluster, opts.nodes, &rec, total.as_secs());

        let tokens = model.tokens_per_iteration(opts.per_gpu_batch, opts.num_gpus(&self.cluster))
            * opts.grad_accum as f64;
        Ok(TrainingReport {
            strategy: strategy.display_name(),
            model_params: model.num_params(),
            nodes: opts.nodes,
            iter_time,
            flops_per_iteration: model.iteration_flops(tokens).total(),
            tokens_per_iteration: tokens,
            memory,
            bandwidth,
            spans: engine.take_spans(),
            hot_links,
            plan_lowerings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_strategies::Strategy;

    fn sim() -> TrainingSim {
        TrainingSim::new(ClusterSpec::default()).unwrap()
    }

    #[test]
    fn ddp_run_produces_sane_report() {
        let mut s = sim();
        let report = s
            .run(
                &Strategy::Ddp,
                &GptConfig::paper_model_with_params(1.4),
                &TrainOptions::single_node(),
                &RunConfig::default(),
            )
            .unwrap();
        assert!(report.throughput_tflops() > 200.0);
        assert!(report.throughput_tflops() < 1248.0, "below 4×A100 peak");
        // Single-node: RoCE silent, NVLink busy.
        let roce = report.bandwidth.stats(0, LinkClass::Roce);
        assert_eq!(roce.avg, 0.0);
        let nvl = report.bandwidth.stats(0, LinkClass::NvLink);
        assert!(nvl.avg > 1e9, "NVLink avg {} too low", nvl.avg);
        assert!(!report.spans.spans().is_empty());
        // The lower-once / re-stamp cache: 4 iterations, one lowering.
        assert_eq!(report.plan_lowerings, 1);
    }

    #[test]
    fn infeasible_strategy_config_is_a_typed_error() {
        let mut s = sim();
        let err = s
            .run(
                &Strategy::Megatron { tp: 3, pp: 1 },
                &GptConfig::paper_model_with_params(1.4),
                &TrainOptions::single_node(),
                &RunConfig::quick(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("must divide the GPU count"));
    }

    #[test]
    fn oversized_model_is_rejected() {
        let mut s = sim();
        let err = s
            .run(
                &Strategy::Ddp,
                &GptConfig::paper_model_with_params(5.5),
                &TrainOptions::single_node(),
                &RunConfig::quick(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::DoesNotFit { tier: "gpu", .. }));
    }

    #[test]
    fn allow_overflow_runs_anyway() {
        let mut s = sim();
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        let r = s
            .run(
                &Strategy::Ddp,
                &GptConfig::paper_model_with_params(2.9),
                &TrainOptions::single_node(),
                &cfg,
            )
            .unwrap();
        assert!(r.throughput_tflops() > 0.0);
    }

    #[test]
    fn dual_node_uses_roce() {
        let mut s = sim();
        let report = s
            .run(
                &Strategy::Zero {
                    stage: zerosim_strategies::ZeroStage::Three,
                },
                &GptConfig::paper_model_with_params(1.4),
                &TrainOptions::dual_node(),
                &RunConfig::quick(),
            )
            .unwrap();
        for node in 0..2 {
            let roce = report.bandwidth.stats(node, LinkClass::Roce);
            assert!(roce.avg > 0.0, "node {node} RoCE idle");
        }
    }
}
