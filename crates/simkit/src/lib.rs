//! `zerosim-simkit` — the simulation kernel underneath ZeroSim.
//!
//! This crate provides the domain-agnostic machinery the rest of the
//! workspace builds on:
//!
//! * [`SimTime`] — integer-nanosecond virtual time;
//! * [`flow`] — a flow-level network simulator with max-min fair bandwidth
//!   sharing (progressive filling) and token-bucket variable-rate links;
//! * [`dag`] — task graphs of compute spans, transfers, and delays;
//! * [`engine`] — the discrete-event executor that runs a DAG against a
//!   flow network and a set of compute resources;
//! * [`record`] — time-bucketed bandwidth recording (avg / p90 / peak, as
//!   the paper's hardware counters report) and timeline span logs.
//!
//! # Example
//!
//! Simulate two GPUs exchanging gradients over a shared link while one of
//! them computes:
//!
//! ```
//! use zerosim_simkit::dag::{DagBuilder, ResourceId};
//! use zerosim_simkit::engine::DagEngine;
//! use zerosim_simkit::flow::FlowNet;
//! use zerosim_simkit::record::BandwidthRecorder;
//! use zerosim_simkit::SimTime;
//!
//! # fn main() -> Result<(), zerosim_simkit::SimError> {
//! let mut net = FlowNet::new();
//! let nvlink = net.add_link("nvlink", 25e9);
//!
//! let mut b = DagBuilder::new();
//! let fwd = b.compute(ResourceId(0), SimTime::from_ms(3.0), "fwd", &[]);
//! b.transfer(vec![nvlink], 100e6, SimTime::from_us(10.0), "allreduce", 0, &[fwd]);
//!
//! let mut rec = BandwidthRecorder::new(SimTime::from_ms(1.0));
//! let mut engine = DagEngine::new(vec![1, 1]);
//! let outcome = engine.run(&mut net, &b.build(), SimTime::ZERO, Some(&mut rec))?;
//! assert!(outcome.makespan() > SimTime::from_ms(3.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bucket;
pub mod dag;
pub mod engine;
mod error;
pub mod fault;
pub mod flow;
pub mod record;
mod time;

pub use bucket::TokenBucket;
pub use dag::{Dag, DagBuilder, ResourceId, TaskId, TaskKind};
pub use engine::{DagEngine, EngineMode, RunOutcome};
pub use error::SimError;
pub use fault::{FaultCursor, FaultEvent, FaultKind, FaultSchedule, FLAP_FLOOR};
pub use flow::{FlowId, FlowNet, FlowObserver, LinkId, NullObserver};
pub use record::{BandwidthRecorder, BandwidthStats, EngineStats, SolverStats, Span, SpanLog};
pub use time::SimTime;
