use zerosim_core::{ArrivalProcess, ServeSpec, TraceConfig};
use zerosim_model::GptConfig;
use zerosim_strategies::{ServingStrategy, TrainOptions};

#[test]
fn open_loop_serve_terminates_many_seeds() {
    for seed in 0..20u64 {
        let trace = TraceConfig {
            requests: 4,
            arrivals: ArrivalProcess::Open { rate_rps: 10.0 },
            prompt_tokens: (64, 128),
            output_tokens: (4, 8),
            seed,
        };
        let spec = ServeSpec::new(
            format!("open-{seed}"),
            ServingStrategy::Dense,
            GptConfig::paper_model_with_params(1.4),
            TrainOptions::single_node(),
            trace,
        );
        eprintln!("seed {seed} starting");
        let run = spec.execute().unwrap();
        assert_eq!(run.report.requests, 4, "seed {seed}");
        eprintln!("seed {seed} ok");
    }
}
