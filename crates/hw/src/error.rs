//! Typed errors for routing and volume queries.
//!
//! The training strategies construct only feasible endpoint pairs, so
//! the panicking [`crate::Cluster::route`] family stays ergonomic for
//! them; static analysis and other consumers of *untrusted* plans use
//! the `try_*` counterparts and turn these errors into diagnostics.

use std::fmt;

use crate::ids::{NvmeId, VolumeId};
use crate::route::MemLoc;

/// A routing or volume query the hardware model cannot satisfy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HwError {
    /// The endpoint combination has no modeled path (e.g. GPU↔NVMe
    /// without a host bounce, or NVMe↔NVMe).
    UnsupportedRoute {
        /// Source location.
        from: MemLoc,
        /// Destination location.
        to: MemLoc,
    },
    /// Source and destination are the same device.
    SelfRoute {
        /// The device routed to itself.
        at: MemLoc,
    },
    /// The endpoint pair must be intra-node (GPU↔CPU, CPU↔NVMe) but
    /// spans two nodes.
    CrossNode {
        /// Source location.
        from: MemLoc,
        /// Destination location.
        to: MemLoc,
    },
    /// The location references a node, GPU, socket, or drive the
    /// cluster does not have.
    OffCluster {
        /// The nonexistent location.
        loc: MemLoc,
    },
    /// The volume id was never registered.
    UnknownVolume {
        /// The unregistered id.
        volume: VolumeId,
    },
    /// A volume needs at least one member drive.
    EmptyVolume,
    /// A volume member references a drive the cluster does not have.
    UnknownDrive {
        /// The nonexistent member.
        drive: NvmeId,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::UnsupportedRoute { from, to } => {
                write!(f, "unsupported route {from:?} -> {to:?}")
            }
            HwError::SelfRoute { at } => {
                write!(f, "route from a GPU to itself ({at:?})")
            }
            HwError::CrossNode { from, to } => {
                write!(
                    f,
                    "cross-node route {from:?} -> {to:?} (GPU-CPU and NVMe routes are intra-node)"
                )
            }
            HwError::OffCluster { loc } => {
                write!(f, "memory location {loc:?} does not exist on this cluster")
            }
            HwError::UnknownVolume { volume } => write!(f, "unknown volume {volume:?}"),
            HwError::EmptyVolume => write!(f, "a volume needs at least one member"),
            HwError::UnknownDrive { drive } => {
                write!(f, "volume member {drive:?} does not exist")
            }
        }
    }
}

impl std::error::Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GpuId;

    #[test]
    fn errors_render_the_legacy_panic_texts() {
        let g = MemLoc::Gpu(GpuId { node: 0, gpu: 0 });
        let n = MemLoc::Nvme(NvmeId { node: 0, drive: 0 });
        assert!(HwError::UnsupportedRoute { from: g, to: n }
            .to_string()
            .starts_with("unsupported route"));
        assert!(HwError::SelfRoute { at: g }
            .to_string()
            .contains("route from a GPU to itself"));
        assert_eq!(
            HwError::EmptyVolume.to_string(),
            "a volume needs at least one member"
        );
        assert!(HwError::UnknownDrive {
            drive: NvmeId { node: 9, drive: 9 }
        }
        .to_string()
        .contains("does not exist"));
    }
}
