//! `zerosim-bench` — the experiment harness regenerating every table and
//! figure of the paper, plus the Criterion micro-benchmarks.
//!
//! Run `cargo run --release -p zerosim-bench --bin repro -- all` to
//! regenerate everything, or pass an artifact id (`fig6`, `table4`, ...).

#![warn(missing_docs)]

pub mod data;
pub mod experiments;

/// All artifact ids: the paper's tables and figures in paper order,
/// followed by the extension studies (`ext1`–`ext15`).
pub const ARTIFACTS: [&str; 35] = [
    "fig1",
    "fig2",
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table4",
    "table5",
    "fig11",
    "fig12",
    "fig13",
    "table6",
    "ext1",
    "ext2",
    "ext3",
    "ext4",
    "ext5",
    "ext6",
    "ext7",
    "ext8",
    "ext9",
    "ext10",
    "ext11",
    "ext12",
    "ext13",
    "ext14",
    "ext15",
    "scorecard",
];

/// Renders one artifact by id with experiment sweeps fanned across
/// `workers` threads ([`data::set_sweep_workers`]). Results are
/// byte-identical at any width; only wall-clock changes.
pub fn render_with(id: &str, workers: usize) -> String {
    data::set_sweep_workers(workers);
    render(id)
}

/// Renders one artifact by id.
///
/// # Panics
/// Panics on an unknown id (the `repro` binary validates first).
pub fn render(id: &str) -> String {
    use experiments::{
        extensions, fleet, micro, offload, resilience, scorecard, serving, setup, train,
    };
    match id {
        "fig1" => setup::fig1(),
        "fig2" => setup::fig2(),
        "table1" => setup::table1(),
        "table2" => setup::table2(),
        "table3" => setup::table3(),
        "fig3" => micro::fig3(),
        "fig4" => micro::fig4(),
        "fig5" => train::fig5(),
        "fig6" => train::fig6(),
        "fig7" => train::fig7(),
        "fig8" => train::fig8(),
        "fig9" => train::fig9(),
        "fig10" => train::fig10(),
        "table4" => train::table4(),
        "table5" => train::table5(),
        "fig11" => offload::fig11(),
        "fig12" => offload::fig12(),
        "fig13" => offload::fig13(),
        "table6" => offload::table6(),
        "ext1" => extensions::ext1_megatron_layouts(),
        "ext2" => extensions::ext2_eight_nvme(),
        "ext3" => extensions::ext3_iod_ablation(),
        "ext4" => extensions::ext4_batch_size(),
        "ext5" => extensions::ext5_nic_sweep(),
        "ext6" => extensions::ext6_energy(),
        "ext7" => extensions::ext7_cost(),
        "ext8" => extensions::ext8_horizontal_vs_vertical(),
        "ext9" => extensions::ext9_grad_accum(),
        "ext10" => extensions::ext10_hidden_size(),
        "ext11" => resilience::goodput_table(),
        "ext12" => extensions::ext12_jean_zay_scale(),
        "ext13" => fleet::ext13_fleet_economics(),
        "ext14" => serving::ext14_serving_latency(),
        "ext15" => extensions::ext15_zeropp_roce_degradation(),
        "scorecard" => scorecard::scorecard(),
        other => panic!("unknown artifact id {other:?}"),
    }
}
