//! Bottleneck doctor: "my training is slow — where does the time go?"
//! Decomposes one iteration of every strategy into compute, exposed
//! communication, exposed staging, and idle, per the worst-affected GPU.
//!
//! Run with: `cargo run --release --example bottleneck_doctor [billions] [nodes]`

use zerosim_core::{attribute_worst_gpu, RunConfig, TrainingSim};
use zerosim_hw::ClusterSpec;
use zerosim_model::GptConfig;
use zerosim_report::Table;
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let billions: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(1.4);
    let nodes: usize = std::env::args()
        .nth(2)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(2);
    let model = GptConfig::paper_model_with_params(billions);
    println!(
        "bottleneck report: {:.1} B model on {nodes} node(s)\n",
        model.num_params() / 1e9
    );

    let mut t = Table::new(vec![
        "strategy",
        "iter",
        "compute %",
        "exposed comm %",
        "staging %",
        "idle %",
        "bottleneck",
    ]);
    let strategies: Vec<Strategy> = vec![
        Strategy::Ddp,
        Strategy::Megatron {
            tp: 4 * nodes,
            pp: 1,
        },
        Strategy::Zero {
            stage: ZeroStage::Two,
        },
        Strategy::Zero {
            stage: ZeroStage::Three,
        },
        Strategy::ZeroOffload {
            stage: ZeroStage::Two,
            offload_params: false,
        },
    ];
    for strategy in strategies {
        let mut sim = TrainingSim::new(ClusterSpec::default())?;
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        let report = sim.run(&strategy, &model, &opts, &cfg)?;
        let b = attribute_worst_gpu(&report, 4);
        let pct = |x: zerosim_simkit::SimTime| {
            format!("{:.0}", 100.0 * x.as_secs() / b.total.as_secs().max(1e-12))
        };
        t.row(vec![
            report.strategy.clone(),
            report.iter_time.to_string(),
            pct(b.compute),
            pct(b.exposed_comm),
            pct(b.exposed_staging),
            pct(b.idle),
            b.bottleneck().into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(percentages are for the GPU carrying the most exposed communication;\n\
         on ring schedules that is a node-boundary rank)"
    );
    Ok(())
}
